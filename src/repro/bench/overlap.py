"""Overlap benchmark: serial vs. pipelined execution (the PR-2 figure).

Runs each workload twice — serial and with the asynchronous sub-block
prefetch pipeline — on otherwise identical configurations, and reports
the modeled speedup from I/O–compute overlap. Because the pipeline's
single in-order worker reproduces the serial disk-operation stream
exactly, the two runs must agree bit-for-bit on results, traffic, and
per-component time; the only permitted difference is the total (the
pipelined clock hides ``min(io, compute)`` minus the pipeline fill
inside each overlap region).

``python -m repro.bench.overlap`` writes the machine-readable record
``BENCH_2.json`` (the start of the repo's perf trajectory);
``--smoke`` runs one small workload both ways and exits nonzero if the
pipelined simulated total exceeds serial or results diverge — the CI
guard for the overlap layer.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.bench.harness import Harness
from repro.bench.reporting import ExperimentReport, compare_times
from repro.core import RunResult

#: Workloads in the record: the paper's four evaluation workloads.
RECORD_ALGOS: Sequence[str] = ("pr", "pr-d", "cc", "sssp")
RECORD_DATASET = "twitter2010"
BENCH_ID = "BENCH_2"


def _run_pair(
    dataset: str, algorithm: str, P: int, prefetch_depth: int
) -> Dict[str, RunResult]:
    """One workload, serial and pipelined, on *fresh* harnesses.

    Fresh stores keep the clock snapshots independent, so per-component
    totals compare bit-for-bit (a shared store would leave ~1e-16
    subtraction artifacts in the second run's snapshot delta).
    """
    runs = {}
    for mode, pipeline in (("serial", False), ("pipelined", True)):
        with Harness(P=P) as harness:
            runs[mode] = harness.run(
                "graphsd",
                algorithm,
                dataset,
                pipeline=pipeline,
                prefetch_depth=prefetch_depth,
            )
    return runs


def _identical(serial: RunResult, pipelined: RunResult) -> bool:
    """Bit-identical results + traces + per-component time and traffic."""
    return (
        bool(np.array_equal(serial.values, pipelined.values, equal_nan=True))
        and serial.iterations == pipelined.iterations
        and serial.model_history == pipelined.model_history
        and serial.frontier_history == pipelined.frontier_history
        and serial.io_traffic == pipelined.io_traffic
        and serial.io_seconds == pipelined.io_seconds
        and serial.compute_seconds == pipelined.compute_seconds
    )


def _workload_entry(serial: RunResult, pipelined: RunResult) -> Dict[str, object]:
    def side(r: RunResult) -> Dict[str, object]:
        return {
            "sim_seconds": r.sim_seconds,
            "io_seconds": r.io_seconds,
            "compute_seconds": r.compute_seconds,
            "overlap_saved_seconds": r.overlap_saved_seconds,
            "wall_seconds": r.wall_seconds,
            "io_traffic_bytes": r.io_traffic,
            "iterations": r.iterations,
            "prefetch_issued": r.prefetch_issued,
            "prefetch_hits": r.prefetch_hits,
            "prefetch_wasted": r.prefetch_wasted,
            "buffer_hit_bytes": r.buffer_hit_bytes,
        }

    cmp = compare_times(
        serial.sim_seconds,
        pipelined.sim_seconds,
        serial.wall_seconds,
        pipelined.wall_seconds,
    )
    return {
        "serial": side(serial),
        "pipelined": side(pipelined),
        "speedup": cmp.sim_speedup,
        "wall_speedup": cmp.wall_speedup,
        "wall_delta_seconds": cmp.wall_delta_seconds,
        "wall_regressed": cmp.wall_regressed,
        "identical_results": _identical(serial, pipelined),
    }


def run_overlap_benchmark(
    harness: Harness,
    dataset: str = RECORD_DATASET,
    algorithms: Sequence[str] = RECORD_ALGOS,
) -> ExperimentReport:
    """Serial vs. pipelined comparison as a bench-CLI experiment report.

    Uses the shared ``harness`` (cached preprocessing) — good for the
    human-readable figure; the JSON record uses fresh harnesses so the
    bit-equality checks are exact.
    """
    report = ExperimentReport(
        "overlap",
        f"I/O-compute overlap on {dataset} "
        f"(prefetch depth {harness.prefetch_depth})",
        [
            "algorithm", "serial (s)", "pipelined (s)", "saved (s)",
            "sim speedup", "wall speedup",
        ],
    )
    speedups = []
    for algo in algorithms:
        serial = harness.run("graphsd", algo, dataset, pipeline=False)
        piped = harness.run("graphsd", algo, dataset, pipeline=True)
        cmp = compare_times(
            serial.sim_seconds, piped.sim_seconds,
            serial.wall_seconds, piped.wall_seconds,
        )
        speedups.append(cmp.sim_speedup)
        report.add_row(
            algo.upper(),
            serial.sim_seconds,
            piped.sim_seconds,
            piped.overlap_saved_seconds,
            f"{cmp.sim_speedup:.2f}x",
            f"{cmp.wall_speedup:.2f}x",
        )
        if cmp.wall_regressed:
            report.add_note(
                f"WALL REGRESSION: {algo} pipelined wall time "
                f"{piped.wall_seconds:.4f}s vs serial {serial.wall_seconds:.4f}s "
                f"({cmp.wall_delta_seconds:+.4f}s) — the model improves but the "
                "implementation pays more than the overlap saves at this scale"
            )
        if not np.array_equal(serial.values, piped.values, equal_nan=True):
            report.add_note(f"WARNING: {algo} results diverged between modes")
    report.add_note(
        f"geo-mean sim speedup {float(np.exp(np.mean(np.log(speedups)))):.2f}x "
        "(results bit-identical; only overlap-hidden time differs)"
    )
    report.data["speedups"] = dict(zip(algorithms, speedups))
    return report


def build_record(
    dataset: str = RECORD_DATASET,
    algorithms: Sequence[str] = RECORD_ALGOS,
    P: int = 8,
    prefetch_depth: int = 2,
) -> Dict[str, object]:
    """The ``BENCH_2.json`` payload."""
    workloads: Dict[str, object] = {}
    for algo in algorithms:
        runs = _run_pair(dataset, algo, P, prefetch_depth)
        workloads[algo] = _workload_entry(runs["serial"], runs["pipelined"])
    return {
        "bench_id": BENCH_ID,
        "description": "serial vs. pipelined (async sub-block prefetch) execution",
        "dataset": dataset,
        "partitions": P,
        "prefetch_depth": prefetch_depth,
        "machine": "default (HDD profile)",
        "workloads": workloads,
    }


def smoke(dataset: str = RECORD_DATASET, algorithm: str = "pr", P: int = 8) -> int:
    """CI guard: one small workload both ways; 0 iff the pipeline holds.

    Checks the PR's acceptance property: pipelined simulated total
    strictly ≤ serial, with bit-identical results and per-component
    totals.
    """
    runs = _run_pair(dataset, algorithm, P, prefetch_depth=2)
    serial, piped = runs["serial"], runs["pipelined"]
    failures: List[str] = []
    if piped.sim_seconds > serial.sim_seconds:
        failures.append(
            f"pipelined total {piped.sim_seconds:.6f}s exceeds serial "
            f"{serial.sim_seconds:.6f}s"
        )
    if not _identical(serial, piped):
        failures.append("serial and pipelined runs are not bit-identical")
    print(f"serial   : {serial.summary()}")
    print(f"pipelined: {piped.summary()}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"OK: overlap saved {piped.overlap_saved_seconds:.3f}s "
            f"({serial.sim_seconds / piped.sim_seconds:.2f}x), results identical"
        )
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.overlap",
        description="Serial vs. pipelined overlap benchmark (writes BENCH_2.json).",
    )
    parser.add_argument(
        "--out", default="BENCH_2.json", help="record path (default: BENCH_2.json)"
    )
    parser.add_argument("-P", "--partitions", type=int, default=8)
    parser.add_argument("--prefetch-depth", type=int, default=2)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run one workload both ways and exit nonzero on a regression",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke(P=args.partitions)
    record = build_record(P=args.partitions, prefetch_depth=args.prefetch_depth)
    # charged-io-ok: host-side benchmark report, not simulated graph I/O
    with open(args.out, "w") as f:
        json.dump(record, f, indent=2)
        f.write("\n")
    for algo, entry in record["workloads"].items():
        print(
            f"{algo}: {entry['serial']['sim_seconds']:.3f}s -> "
            f"{entry['pipelined']['sim_seconds']:.3f}s "
            f"({entry['speedup']:.2f}x, identical={entry['identical_results']})"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
