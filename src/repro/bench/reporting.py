"""Plain-text rendering of experiment results.

The paper's evaluation communicates through normalized bar charts and
small tables; the harness renders the same content as aligned text
tables (one per table/figure) so `pytest benchmarks/` output reads like
the evaluation section.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(row[c]) for row in cells) for c in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def normalize(values: Mapping[str, float], reference: str) -> Dict[str, float]:
    """Each value divided by ``values[reference]`` (the paper's Fig. 5 style)."""
    ref = values[reference]
    if ref == 0:
        return {k: 0.0 for k in values}
    return {k: v / ref for k, v in values.items()}


def mib(nbytes: float) -> float:
    return nbytes / (1 << 20)


#: Wall-clock ratios within this relative band count as noise, not a
#: regression (wall time is measured, not simulated, so it jitters).
WALL_REGRESSION_TOLERANCE = 0.01


@dataclass(frozen=True)
class TimeComparison:
    """Simulated *and* real-wall deltas of one before/after pair.

    Simulated speedups come from a deterministic clock and are exact;
    wall times are real measurements of the harness process. An
    optimization that improves the model but slows the implementation
    shows up here as ``sim_speedup > 1`` with ``wall_regressed`` set —
    the report must surface that, not average it away.
    """

    sim_before: float
    sim_after: float
    wall_before: float
    wall_after: float

    @property
    def sim_speedup(self) -> float:
        return self.sim_before / self.sim_after if self.sim_after else float("inf")

    @property
    def wall_speedup(self) -> float:
        return self.wall_before / self.wall_after if self.wall_after else float("inf")

    @property
    def wall_delta_seconds(self) -> float:
        """Positive when the 'after' side is *slower* in real time."""
        return self.wall_after - self.wall_before

    @property
    def wall_regressed(self) -> bool:
        """Real wall time got worse beyond the noise tolerance."""
        return self.wall_speedup < 1.0 - WALL_REGRESSION_TOLERANCE

    def describe(self, label: str = "") -> str:
        prefix = f"{label}: " if label else ""
        text = (
            f"{prefix}sim {self.sim_speedup:.2f}x, "
            f"wall {self.wall_speedup:.2f}x "
            f"({self.wall_delta_seconds:+.4f}s)"
        )
        if self.wall_regressed:
            text += " [WALL REGRESSION]"
        return text


def compare_times(
    sim_before: float, sim_after: float, wall_before: float, wall_after: float
) -> TimeComparison:
    """Pair the simulated and wall deltas of a before/after experiment."""
    return TimeComparison(sim_before, sim_after, wall_before, wall_after)


@dataclass
class ExperimentReport:
    """One table/figure worth of reproduced results."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: Free-form payload for machine consumption (EXPERIMENTS.md tooling).
    data: Dict[str, object] = field(default_factory=dict)

    def add_row(self, *values: object) -> None:
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} =="]
        parts.append(format_table(self.headers, self.rows))
        for note in self.notes:
            parts.append(f"  note: {note}")
        return "\n".join(parts)

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering (for EXPERIMENTS.md)."""
        lines = [f"### {self.experiment_id}: {self.title}", ""]
        lines.append("| " + " | ".join(str(h) for h in self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(_fmt(v) for v in row) + " |")
        for note in self.notes:
            lines.append("")
            lines.append(f"*{note}*")
        return "\n".join(lines)
