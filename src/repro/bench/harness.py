"""Experiment harness: systems × algorithms × datasets, with caching.

Joins the pieces: dataset proxies, per-system preprocessing pipelines,
engines, and metric collection. Preprocessed representations are cached
per (dataset variant, representation) so a 3-system × 4-algorithm sweep
preprocesses each graph once per representation, exactly like reusing
on-disk preprocessed data across runs (which the paper calls out as the
amortization argument in §5.3).
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.algorithms import make_program
from repro.algorithms.base import GraphContext, VertexProgram
from repro.baselines import (
    BSPReference,
    GraphChiEngine,
    GridGraphEngine,
    HUSGraphEngine,
    LumosEngine,
    XStreamEngine,
)
from repro.core import AsyncGraphSDEngine, GraphSDConfig, GraphSDEngine, RunResult
from repro.core.engine import DEFAULT_PREFETCH_DEPTH
from repro.core.engine_base import EngineBase
from repro.datasets import load_dataset
from repro.graph import (
    EdgeList,
    GridStore,
    PreprocessResult,
    preprocess_graphsd,
    preprocess_husgraph,
    preprocess_lumos,
)
from repro.graph.grid import ENCODINGS, ENCODING_RAW
from repro.graph.degree import out_degrees
from repro.storage import (
    DEFAULT_MACHINE,
    Device,
    FaultPlan,
    MachineProfile,
    SimulatedDisk,
)
from repro.tune.profile import TunedProfile
from repro.utils.validation import require


@dataclass(frozen=True)
class Workload:
    """One of the paper's evaluation workloads (§5.1)."""

    key: str
    algorithm: str
    params: Dict[str, object] = field(default_factory=dict)
    weighted: bool = False
    symmetrize: bool = False
    #: Optional per-workload pipeline overrides; ``None`` defers to the
    #: harness (whose own default is serial execution).
    pipeline: Optional[bool] = None
    prefetch_depth: Optional[int] = None

    def make_program(self) -> VertexProgram:
        return make_program(self.algorithm, **self.params)


#: The paper's four workloads: PR runs 5 iterations, PR-D 20; CC and SSSP
#: run to convergence. CC uses the symmetrized (undirected) view; SSSP
#: needs weights.
WORKLOADS: Dict[str, Workload] = {
    "pr": Workload("pr", "pagerank", {"iterations": 5}),
    "pr-d": Workload("pr-d", "pagerank_delta", {"iterations": 20}),
    "cc": Workload("cc", "cc", symmetrize=True),
    "sssp": Workload("sssp", "sssp", {"source": 0}, weighted=True),
    "bfs": Workload("bfs", "bfs", {"root": 0}),
    "sswp": Workload("sswp", "sswp", {"source": 0}, weighted=True),
    "ppr": Workload("ppr", "ppr", {"seeds": [0]}),
}


@dataclass(frozen=True)
class SystemSpec:
    """A system under test: its representation + engine factory."""

    name: str
    representation: str  # cache key: which preprocessing pipeline
    make_engine: Callable[..., EngineBase]


def _graphsd_engine(
    config: Optional[GraphSDConfig] = None,
    label: Optional[str] = None,
    engine_cls: type = GraphSDEngine,
):
    def make(
        store: GridStore,
        machine: MachineProfile,
        ctx: GraphContext,
        pipeline: bool = False,
        prefetch_depth: int = DEFAULT_PREFETCH_DEPTH,
        gather_lanes: int = 1,
        buffer_serves_selective: Optional[bool] = None,
        tuned_profile: Optional["TunedProfile"] = None,
    ) -> EngineBase:
        from dataclasses import replace

        cfg = config if config is not None else GraphSDConfig()
        cfg = replace(
            cfg,
            pipeline=pipeline,
            prefetch_depth=prefetch_depth,
            gather_lanes=gather_lanes,
            tuned_profile=tuned_profile,
        )
        if buffer_serves_selective is not None:
            cfg = replace(cfg, buffer_serves_selective=buffer_serves_selective)
        return engine_cls(store, machine, config=cfg, ctx=ctx, label=label)

    return make


def _simple_engine(cls):
    def make(
        store: GridStore,
        machine: MachineProfile,
        ctx: GraphContext,
        pipeline: bool = False,
        prefetch_depth: int = DEFAULT_PREFETCH_DEPTH,
        gather_lanes: int = 1,
        buffer_serves_selective: Optional[bool] = None,
        tuned_profile: Optional["TunedProfile"] = None,
    ) -> EngineBase:
        # Baseline engines model strictly serial systems; the pipeline
        # and gather knobs do not apply to them.
        require(not pipeline, f"{cls.__name__} does not support --pipeline")
        require(gather_lanes == 1, f"{cls.__name__} does not support --gather-lanes")
        require(
            buffer_serves_selective is None,
            f"{cls.__name__} does not support --buffer-serves-selective",
        )
        require(tuned_profile is None, f"{cls.__name__} does not support --autotune")
        return cls(store, machine, ctx=ctx)

    return make


SYSTEMS: Dict[str, SystemSpec] = {
    "graphsd": SystemSpec("graphsd", "graphsd", _graphsd_engine()),
    "graphsd-async": SystemSpec(
        "graphsd-async",
        "graphsd",
        _graphsd_engine(engine_cls=AsyncGraphSDEngine),
    ),
    "graphsd-b1": SystemSpec(
        "graphsd-b1", "graphsd", _graphsd_engine(GraphSDConfig.baseline_b1(), "graphsd-b1")
    ),
    "graphsd-b2": SystemSpec(
        "graphsd-b2", "graphsd", _graphsd_engine(GraphSDConfig.baseline_b2(), "graphsd-b2")
    ),
    "graphsd-b3": SystemSpec(
        "graphsd-b3", "graphsd", _graphsd_engine(GraphSDConfig.baseline_b3(), "graphsd-b3")
    ),
    "graphsd-b4": SystemSpec(
        "graphsd-b4", "graphsd", _graphsd_engine(GraphSDConfig.baseline_b4(), "graphsd-b4")
    ),
    "graphsd-nobuffer": SystemSpec(
        "graphsd-nobuffer",
        "graphsd",
        _graphsd_engine(GraphSDConfig.no_buffering(), "graphsd-nobuffer"),
    ),
    "graphsd-bufsel": SystemSpec(
        "graphsd-bufsel",
        "graphsd",
        _graphsd_engine(
            GraphSDConfig(buffer_serves_selective=True), "graphsd-bufsel"
        ),
    ),
    "husgraph": SystemSpec("husgraph", "husgraph", _simple_engine(HUSGraphEngine)),
    "lumos": SystemSpec("lumos", "lumos", _simple_engine(LumosEngine)),
    "gridgraph": SystemSpec("gridgraph", "lumos", _simple_engine(GridGraphEngine)),
    "graphchi": SystemSpec("graphchi", "lumos", _simple_engine(GraphChiEngine)),
    "xstream": SystemSpec("xstream", "lumos", _simple_engine(XStreamEngine)),
}

_PREPROCESSORS = {
    "graphsd": preprocess_graphsd,
    "husgraph": preprocess_husgraph,
    "lumos": preprocess_lumos,
}


class Harness:
    """Runs (system, workload, dataset) combinations with representation caching."""

    def __init__(
        self,
        workspace: Optional[str] = None,
        machine: MachineProfile = DEFAULT_MACHINE,
        P: int = 8,
        verify: bool = False,
        checksums: bool = False,
        pipeline: bool = False,
        prefetch_depth: int = DEFAULT_PREFETCH_DEPTH,
        gather_lanes: int = 1,
        buffer_serves_selective: Optional[bool] = None,
        tuned_profile: Optional[TunedProfile] = None,
        encoding: str = ENCODING_RAW,
        trace_dir: Optional[str] = None,
        async_mode: bool = False,
    ) -> None:
        if workspace is None:
            self._tmpdir = tempfile.mkdtemp(prefix="graphsd-bench-")
            self.workspace = Path(self._tmpdir)
            self._owns_workspace = True
        else:
            self.workspace = Path(workspace)
            self.workspace.mkdir(parents=True, exist_ok=True)
            self._owns_workspace = False
        require(encoding in ENCODINGS, f"unknown grid encoding {encoding!r}")
        self.machine = machine
        self.P = P
        self.verify = verify
        self.checksums = checksums
        self.pipeline = pipeline
        self.prefetch_depth = prefetch_depth
        #: Modeled disk-lane concurrency for SCIU's selective gathers
        #: (K=1 is the serial, bit-identical default).
        self.gather_lanes = gather_lanes
        #: ``None`` leaves each system's own config untouched; True/False
        #: overrides ``buffer_serves_selective`` on graphsd engines.
        self.buffer_serves_selective = buffer_serves_selective
        #: Fitted cost-model profile fed into graphsd's scheduler
        #: (``graphsd tune`` output; see docs/TUNING.md).
        self.tuned_profile = tuned_profile
        #: Sub-block encoding for the graphsd representation. Baseline
        #: representations (lumos, husgraph) always build raw grids —
        #: the compared systems do not have the compact layout.
        self.encoding = encoding
        #: Route ``graphsd`` runs through the asynchronous priority-driven
        #: engine (monotonic programs only; see
        #: :mod:`repro.core.async_engine`). Baselines never run async.
        self.async_mode = async_mode
        #: When set, every *executed* run writes a structured trace
        #: (docs/OBSERVABILITY.md) into this directory, named after its
        #: cell. Memoized cells execute once, so each unique cell yields
        #: exactly one trace file per sweep.
        self.trace_dir: Optional[Path] = Path(trace_dir) if trace_dir else None
        self._stores: Dict[Tuple, Tuple[GridStore, PreprocessResult]] = {}
        self._edges: Dict[Tuple, EdgeList] = {}
        self._contexts: Dict[Tuple, GraphContext] = {}
        self._reference_cache: Dict[Tuple, np.ndarray] = {}
        self._run_cache: Dict[Tuple, RunResult] = {}
        self._cluster_runs = 0

    # -- inputs --------------------------------------------------------

    def edges_for(self, dataset: str, workload: Workload) -> EdgeList:
        key = (dataset, workload.weighted, workload.symmetrize)
        if key not in self._edges:
            self._edges[key] = load_dataset(
                dataset, weighted=workload.weighted, symmetrize=workload.symmetrize
            )
        return self._edges[key]

    def context_for(self, dataset: str, workload: Workload) -> GraphContext:
        """Shared per-graph context (degrees computed once, in memory)."""
        key = (dataset, workload.weighted, workload.symmetrize)
        if key not in self._contexts:
            edges = self.edges_for(dataset, workload)
            self._contexts[key] = GraphContext(
                num_vertices=edges.num_vertices,
                num_edges=edges.num_edges,
                out_degrees=out_degrees(edges),
            )
        return self._contexts[key]

    # -- preprocessing (cached) ---------------------------------------------

    def preprocess(
        self, representation: str, dataset: str, workload: Workload
    ) -> Tuple[GridStore, PreprocessResult]:
        require(representation in _PREPROCESSORS, f"unknown representation {representation!r}")
        encoding = self.encoding if representation == "graphsd" else ENCODING_RAW
        key = (
            representation, dataset, workload.weighted, workload.symmetrize,
            self.P, encoding,
        )
        if key not in self._stores:
            edges = self.edges_for(dataset, workload)
            tag = f"{dataset}-{'w' if workload.weighted else 'u'}{'s' if workload.symmetrize else 'd'}"
            device = Device(
                self.workspace / representation / encoding / tag,
                SimulatedDisk(self.machine.disk),
                checksums=self.checksums,
            )
            kwargs = {"encoding": encoding} if representation == "graphsd" else {}
            result = _PREPROCESSORS[representation](
                edges, device, P=self.P, machine=self.machine, **kwargs
            )
            self._stores[key] = (result.store, result)
        return self._stores[key]

    def preprocess_result(self, system: str, dataset: str) -> PreprocessResult:
        """Preprocessing metrics for Fig. 8 (unweighted directed input)."""
        spec = SYSTEMS[system]
        _store, result = self.preprocess(spec.representation, dataset, WORKLOADS["pr"])
        return result

    # -- execution -----------------------------------------------------

    def run(
        self,
        system: str,
        workload_key: str,
        dataset: str,
        use_cache: bool = True,
        pipeline: Optional[bool] = None,
        prefetch_depth: Optional[int] = None,
        gather_lanes: Optional[int] = None,
        buffer_serves_selective: Optional[bool] = None,
        trace_path: Optional[str] = None,
        async_mode: Optional[bool] = None,
    ) -> RunResult:
        """Execute one (system, workload, dataset) cell.

        Executions are deterministic (simulated clock, fixed seeds), so
        results are memoized by default; experiments that share cells
        (Table 4 / Fig. 5 / Fig. 6 / Fig. 7 all reuse the same runs, as
        the paper's evaluation does) pay for each cell once.

        ``pipeline``/``prefetch_depth`` resolve per call → per workload →
        harness default; ``gather_lanes``/``buffer_serves_selective``
        resolve per call → harness default. Cells with different knob
        settings are cached separately (they produce identical values
        but different modeled times/counters).

        ``trace_path`` (or the harness-level ``trace_dir``) attaches a
        structured tracer to the engine — every engine, baselines
        included, supports it via
        :meth:`~repro.core.engine_base.EngineBase.attach_tracer`.
        Memoized cells do not re-execute, so no trace is written for a
        cache hit.
        """
        workload = WORKLOADS[workload_key]
        if pipeline is None:
            pipeline = workload.pipeline if workload.pipeline is not None else self.pipeline
        if prefetch_depth is None:
            prefetch_depth = (
                workload.prefetch_depth
                if workload.prefetch_depth is not None
                else self.prefetch_depth
            )
        if gather_lanes is None:
            gather_lanes = self.gather_lanes
        if buffer_serves_selective is None:
            buffer_serves_selective = self.buffer_serves_selective
        if async_mode is None:
            async_mode = self.async_mode
        if async_mode:
            # ``--async`` routes the flagship system through the
            # asynchronous engine; the ablation and baseline systems
            # model synchronous designs and have no async counterpart.
            require(
                system in ("graphsd", "graphsd-async"),
                f"{system} does not support async mode",
            )
            system = "graphsd-async"
        key = (
            system, workload_key, dataset, bool(pipeline), int(prefetch_depth),
            int(gather_lanes), buffer_serves_selective,
        )
        if use_cache and key in self._run_cache:
            return self._run_cache[key]
        spec = SYSTEMS[system]
        store, prep = self.preprocess(spec.representation, dataset, workload)
        # Preprocessing already produced the degrees; reuse its context
        # so no engine pays a second full-graph scan (charged or not).
        ctx = prep.context if prep.out_degrees is not None else self.context_for(
            dataset, workload
        )
        engine = spec.make_engine(
            store,
            self.machine,
            ctx,
            pipeline=pipeline,
            prefetch_depth=prefetch_depth,
            gather_lanes=gather_lanes,
            buffer_serves_selective=buffer_serves_selective,
            tuned_profile=self.tuned_profile,
        )
        if trace_path is None and self.trace_dir is not None:
            suffix = "-pipelined" if pipeline else ""
            name = f"{system}-{workload_key}-{dataset}{suffix}.trace.jsonl"
            self.trace_dir.mkdir(parents=True, exist_ok=True)
            trace_path = str(self.trace_dir / name)
        if trace_path is not None:
            from repro.obs import Tracer

            engine.attach_tracer(Tracer(), path=trace_path)
        result = engine.run(workload.make_program())
        if self.verify:
            self.check_against_reference(result, workload, dataset)
        if use_cache:
            self._run_cache[key] = result
        return result

    def run_cluster(
        self,
        workload_key: str,
        dataset: str,
        workers: int,
        interconnect: str = "eth10",
        fault_plan: Optional[FaultPlan] = None,
        worker_disk_factors: Optional[Dict[int, float]] = None,
        straggler_factor: Optional[float] = 3.0,
        max_iterations: Optional[int] = None,
        trace_path: Optional[str] = None,
    ) -> RunResult:
        """Execute one workload on the simulated N-worker cluster.

        Reuses the cached graphsd grid representation; each invocation
        gets a fresh scratch directory (worker value slices and
        checkpoints are per-run state). Cluster runs are not memoized —
        their point is usually a distinct fault schedule per call.
        """
        from repro.cluster import ClusterConfig, ClusterEngine, INTERCONNECT_PROFILES

        require(
            interconnect in INTERCONNECT_PROFILES,
            f"unknown interconnect profile {interconnect!r} "
            f"(choose from {sorted(INTERCONNECT_PROFILES)})",
        )
        workload = WORKLOADS[workload_key]
        store, prep = self.preprocess("graphsd", dataset, workload)
        ctx = prep.context if prep.out_degrees is not None else self.context_for(
            dataset, workload
        )
        self._cluster_runs += 1
        scratch = (
            self.workspace
            / "cluster"
            / f"{workload_key}-{dataset}-n{workers}-{self._cluster_runs}"
        )
        config = ClusterConfig(
            workers=workers,
            interconnect=INTERCONNECT_PROFILES[interconnect],
            machine=self.machine,
            worker_disk_factors=dict(worker_disk_factors or {}),
            fault_plan=fault_plan,
            straggler_factor=straggler_factor,
        )
        engine = ClusterEngine(
            store.device.root, store.prefix, scratch, config, ctx=ctx
        )
        if trace_path is not None:
            from repro.obs import Tracer

            engine.attach_tracer(Tracer(), path=trace_path)
        result = engine.run(workload.make_program(), max_iterations=max_iterations)
        if self.verify:
            self.check_against_reference(result, workload, dataset)
        return result

    def check_against_reference(
        self, result: RunResult, workload: Workload, dataset: str
    ) -> None:
        """Assert the engine's values match the in-memory BSP oracle."""
        key = (workload.key, dataset)
        if key not in self._reference_cache:
            edges = self.edges_for(dataset, workload)
            ref = BSPReference(edges).run(workload.make_program())
            self._reference_cache[key] = ref.values
        expected = self._reference_cache[key]
        require(
            bool(np.allclose(expected, result.values, equal_nan=True)),
            f"{result.engine} produced wrong {workload.key} values on {dataset}",
        )

    # -- lifecycle -------------------------------------------------------

    def cleanup(self) -> None:
        if self._owns_workspace:
            shutil.rmtree(self.workspace, ignore_errors=True)
        self._stores.clear()

    def __enter__(self) -> "Harness":
        return self

    def __exit__(self, *exc: object) -> None:
        self.cleanup()
