"""Trace smoke check: the CI guard for the observability layer.

Runs a small workload twice per system — once untraced, once with a
structured tracer attached — and fails (exit 1) unless every guarantee
in ``docs/OBSERVABILITY.md`` holds:

* the trace file is schema-valid JSONL (``graphsd-trace`` v1);
* per-iteration simulated seconds in the trace equal the engine's
  :class:`~repro.core.result.IterationRecord` breakdowns **exactly**
  (no re-measured or re-derived numbers), and the run event equals the
  final breakdown total;
* for the adaptive engine, every scheduler decision is audited with
  both predicted and actual costs (the Fig. 10 data);
* the Chrome/Perfetto export round-trips structurally;
* tracing is observationally free: traced and untraced runs are
  equivalent (bit-identical values, identical breakdowns, identical
  IOStats up to the documented wall-clock counters).

``python -m repro.bench.trace_smoke`` runs the check standalone.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from typing import List, Optional, Sequence

from repro.bench.harness import Harness
from repro.core.result import RunResult, equivalence_diff
from repro.obs import export_file, validate_trace_file

#: Adaptive engine plus one fixed-model ablation and one baseline: the
#: three engine shapes the tracer wiring has to cover.
SMOKE_SYSTEMS: Sequence[str] = ("graphsd", "graphsd-b4", "xstream")
SMOKE_DATASET = "twitter2010"
SMOKE_ALGO = "bfs"


def _check_iteration_exactness(
    events: List[dict], result: RunResult, errors: List[str]
) -> None:
    iterations = [e for e in events if e["type"] == "iteration"]
    if len(iterations) != len(result.per_iteration):
        errors.append(
            f"trace has {len(iterations)} iteration events, result has "
            f"{len(result.per_iteration)} records"
        )
        return
    for event, record in zip(iterations, result.per_iteration):
        if event["sim_seconds"] != record.breakdown.total:
            errors.append(
                f"iteration {record.iteration}: trace sim_seconds "
                f"{event['sim_seconds']!r} != breakdown total "
                f"{record.breakdown.total!r}"
            )
        if event["sim"] != dict(record.breakdown.components):
            errors.append(f"iteration {record.iteration}: sim components differ")
        if event["io"] != record.io.to_dict():
            errors.append(f"iteration {record.iteration}: io counters differ")
    (run_event,) = [e for e in events if e["type"] == "run"]
    if run_event["sim_seconds"] != result.breakdown.total:
        errors.append(
            f"run event sim_seconds {run_event['sim_seconds']!r} != "
            f"breakdown total {result.breakdown.total!r}"
        )


def _check_audits(events: List[dict], errors: List[str]) -> None:
    audits = [e for e in events if e["type"] == "audit"]
    if not audits:
        errors.append("adaptive run produced no scheduler-audit events")
        return
    for audit in audits:
        for key in ("c_full", "c_on_demand", "actual_sim_seconds", "actual_model"):
            if audit.get(key) is None:
                errors.append(
                    f"audit at iteration {audit.get('iteration')}: {key} missing"
                )


def _check_export(trace_path: str, out_path: str, errors: List[str]) -> None:
    export_file(trace_path, out_path)
    with open(out_path) as f:  # charged-io-ok: host-side export file
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        errors.append("Perfetto export has no traceEvents")
        return
    for event in events:
        if not {"ph", "pid", "name"} <= set(event):
            errors.append(f"malformed trace_event entry: {event!r}")
            return
    if not any(e["ph"] == "X" for e in events):
        errors.append("Perfetto export has no complete ('X') events")


def run_smoke(
    P: int = 4, workdir: Optional[str] = None, verbose: bool = True
) -> List[str]:
    """Run the full check; returns a list of failures (empty == pass)."""
    errors: List[str] = []
    with tempfile.TemporaryDirectory(prefix="graphsd-trace-smoke-") as tmp:
        out = Path(workdir) if workdir else Path(tmp)
        out.mkdir(parents=True, exist_ok=True)
        # Two harnesses executing the same run sequence: shared clocks
        # accumulate across a harness's runs, so comparing a traced run
        # against an untraced one *in the same harness* would start them
        # at different absolute sim offsets and perturb the float deltas
        # by an ulp. Identical sequences in separate harnesses keep every
        # pair exactly comparable.
        with Harness(P=P, verify=True) as plain, Harness(P=P) as instrumented:
            for system in SMOKE_SYSTEMS:
                trace_path = str(out / f"{system}.trace.jsonl")
                untraced = plain.run(system, SMOKE_ALGO, SMOKE_DATASET)
                traced = instrumented.run(
                    system, SMOKE_ALGO, SMOKE_DATASET, trace_path=trace_path
                )

                events = validate_trace_file(trace_path)
                _check_iteration_exactness(events, traced, errors)
                if system == "graphsd":
                    _check_audits(events, errors)
                _check_export(trace_path, str(out / f"{system}.chrome.json"), errors)

                for line in equivalence_diff(traced, untraced):
                    errors.append(f"{system}: traced != untraced: {line}")

                if verbose:
                    n_audit = sum(1 for e in events if e["type"] == "audit")
                    status = "OK" if not errors else f"{len(errors)} failure(s)"
                    print(
                        f"{system}: {len(events)} events, "
                        f"{traced.iterations} iterations, {n_audit} audits — "
                        f"{status}"
                    )
    return errors


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-P", "--partitions", type=int, default=4)
    parser.add_argument(
        "--keep", default=None, metavar="DIR", help="keep trace files in DIR"
    )
    args = parser.parse_args(argv)
    errors = run_smoke(P=args.partitions, workdir=args.keep)
    if errors:
        for line in errors:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    print("trace smoke: all checks passed")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
