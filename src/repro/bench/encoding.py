"""Encoding benchmark: raw vs. compact sub-block layout (the PR-3 figure).

Runs every workload on identical graphs under both on-disk encodings
(see ``docs/STORAGE.md``) and across the system configurations that
exercise every load path — the adaptive scheduler, the FCIU-pinned b3
ablation (full streams + buffer), and the SCIU-pinned b4 ablation
(selective index-range gathers) — serial and pipelined. The compact
decoder produces :class:`~repro.graph.grid.EdgeBlock` objects
bit-identical to the raw decoder's, so every run pair must agree
bit-for-bit on values and iteration counts; pinned ablations must also
replay the exact model schedule. The only other permitted differences
are byte volume, the times that follow from it, and (adaptive only)
model choices at the shifted full-vs-on-demand crossover.

``python -m repro.bench.encoding`` writes the machine-readable record
``BENCH_3.json`` (on-disk byte ratios + per-workload sim/wall deltas);
``--smoke`` builds both layouts on a small R-MAT graph, asserts
identical PageRank/SSSP results and encoded < raw bytes, and exits
nonzero on any violation — the CI guard for the encoding layer.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.bench.harness import Harness, WORKLOADS
from repro.bench.reporting import compare_times
from repro.core import RunResult

#: All seven evaluation workloads: the encoding must be invisible to
#: every algorithm, not just the paper's headline four.
RECORD_ALGOS: Sequence[str] = ("pr", "pr-d", "cc", "sssp", "bfs", "sswp", "ppr")
#: Adaptive + the two pinned ablations: together they cover full
#: streams, buffered re-reads, and selective index-range gathers.
RECORD_SYSTEMS: Sequence[str] = ("graphsd", "graphsd-b3", "graphsd-b4")
RECORD_DATASET = "twitter2010"
BENCH_ID = "BENCH_3"


def _identical(raw: RunResult, compact: RunResult, same_models: bool) -> bool:
    """Bit-identical values and identical computed trajectory.

    Byte-dependent quantities (traffic, io_seconds) legitimately differ
    between encodings; everything the computation produces must not.
    ``same_models`` additionally requires identical per-iteration model
    choices and frontier accounting — demanded of the pinned ablations
    (their schedule is forced), but not of the adaptive scheduler: its
    full-vs-on-demand crossover legitimately moves when the byte model
    shrinks full sweeps more than selective gathers, and FCIU's merged
    double-iterations record frontier sizes differently than SCIU's
    strict-BSP rounds do.
    """
    return (
        bool(np.array_equal(raw.values, compact.values, equal_nan=True))
        and raw.iterations == compact.iterations
        and (
            not same_models
            or (
                raw.model_history == compact.model_history
                and raw.frontier_history == compact.frontier_history
            )
        )
    )


def _bytes_entry(harness_raw: Harness, harness_compact: Harness, dataset: str) -> Dict[str, object]:
    """On-disk edge-byte figures for the unweighted and weighted grids."""
    entry: Dict[str, object] = {}
    for label, workload in (("unweighted", WORKLOADS["pr"]), ("weighted", WORKLOADS["sssp"])):
        raw_store, _ = harness_raw.preprocess("graphsd", dataset, workload)
        compact_store, _ = harness_compact.preprocess("graphsd", dataset, workload)
        entry[label] = {
            "raw_edge_bytes": raw_store.total_edge_bytes,
            "compact_edge_bytes": compact_store.total_edge_bytes,
            "reduction": raw_store.total_edge_bytes / compact_store.total_edge_bytes,
            "edges": raw_store.total_edges,
        }
    return entry


def build_record(
    dataset: str = RECORD_DATASET,
    algorithms: Sequence[str] = RECORD_ALGOS,
    systems: Sequence[str] = RECORD_SYSTEMS,
    P: int = 8,
) -> Dict[str, object]:
    """The ``BENCH_3.json`` payload.

    One harness per encoding (shared preprocessing and run caches, like
    a user reusing an on-disk representation across runs); every
    (algorithm, system, pipeline) cell is run under both encodings and
    checked for bit-identical results.
    """
    with Harness(P=P, encoding="raw") as h_raw, Harness(P=P, encoding="compact") as h_comp:
        record: Dict[str, object] = {
            "bench_id": BENCH_ID,
            "description": "raw vs. compact (CSR-style local-ID) sub-block encoding",
            "dataset": dataset,
            "partitions": P,
            "machine": "default (HDD profile)",
            "on_disk_bytes": _bytes_entry(h_raw, h_comp, dataset),
            "workloads": {},
        }
        for algo in algorithms:
            algo_entry: Dict[str, object] = {}
            for system in systems:
                for pipeline in (False, True):
                    raw = h_raw.run(system, algo, dataset, pipeline=pipeline)
                    comp = h_comp.run(system, algo, dataset, pipeline=pipeline)
                    cmp = compare_times(
                        raw.sim_seconds, comp.sim_seconds,
                        raw.wall_seconds, comp.wall_seconds,
                    )
                    algo_entry[f"{system}{'+pipeline' if pipeline else ''}"] = {
                        "raw_sim_seconds": raw.sim_seconds,
                        "compact_sim_seconds": comp.sim_seconds,
                        "raw_io_bytes": raw.io_traffic,
                        "compact_io_bytes": comp.io_traffic,
                        "sim_speedup": cmp.sim_speedup,
                        "wall_speedup": cmp.wall_speedup,
                        "wall_delta_seconds": cmp.wall_delta_seconds,
                        "wall_regressed": cmp.wall_regressed,
                        "identical_results": _identical(
                            raw, comp, same_models=(system != "graphsd")
                        ),
                        "same_model_choices": raw.model_history == comp.model_history,
                    }
            record["workloads"][algo] = algo_entry
    return record


def check_record(record: Dict[str, object]) -> List[str]:
    """The PR's acceptance properties, as human-readable failures."""
    failures: List[str] = []
    unweighted = record["on_disk_bytes"]["unweighted"]
    if unweighted["reduction"] < 1.8:
        failures.append(
            f"unweighted edge-byte reduction {unweighted['reduction']:.2f}x < 1.8x"
        )
    for algo, entry in record["workloads"].items():
        for config, cell in entry.items():
            if not cell["identical_results"]:
                failures.append(f"{algo}/{config}: results differ between encodings")
    return failures


def smoke(scale: int = 11, edge_factor: float = 12.0, P: int = 4) -> int:
    """CI guard: both layouts on a small R-MAT graph, engines must agree.

    Builds raw and compact grids from one generated graph, runs
    PageRank (unweighted) and SSSP (weighted) through the adaptive
    engine on each, and requires bit-identical values plus
    encoded bytes strictly below raw bytes. Exit 0 iff all hold.
    """
    import pathlib
    import tempfile

    from repro.algorithms import PageRank, SSSP
    from repro.core import GraphSDEngine
    from repro.datasets.rmat import rmat_edges
    from repro.datasets.synthetic import with_uniform_weights
    from repro.graph import GridStore, make_intervals
    from repro.storage import Device

    failures: List[str] = []
    root = pathlib.Path(tempfile.mkdtemp(prefix="encoding-smoke-"))
    for name, algo, weighted in (("pr", PageRank(iterations=5), False),
                                 ("sssp", SSSP(source=0), True)):
        edges = rmat_edges(scale, edge_factor, seed=42)
        if weighted:
            edges = with_uniform_weights(edges, seed=42)
        intervals = make_intervals(edges, P)
        results = {}
        sizes = {}
        for encoding in ("raw", "compact"):
            store = GridStore.build(
                edges, intervals, Device(root / f"{name}-{encoding}"),
                prefix="g", indexed=True, encoding=encoding,
            )
            sizes[encoding] = store.total_edge_bytes
            results[encoding] = GraphSDEngine(store).run(algo)
        if not np.array_equal(
            results["raw"].values, results["compact"].values, equal_nan=True
        ):
            failures.append(f"{name}: raw and compact values differ")
        if sizes["compact"] >= sizes["raw"]:
            failures.append(
                f"{name}: compact {sizes['compact']} bytes not below raw {sizes['raw']}"
            )
        print(
            f"{name}: raw {sizes['raw']} B -> compact {sizes['compact']} B "
            f"({sizes['raw'] / sizes['compact']:.2f}x), identical="
            f"{np.array_equal(results['raw'].values, results['compact'].values, equal_nan=True)}"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK: encodings agree, compact is smaller")
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.encoding",
        description="Raw vs. compact sub-block encoding benchmark (writes BENCH_3.json).",
    )
    parser.add_argument(
        "--out", default="BENCH_3.json", help="record path (default: BENCH_3.json)"
    )
    parser.add_argument("-P", "--partitions", type=int, default=8)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="build both layouts on a small R-MAT graph and exit nonzero "
        "on divergent results or a size non-reduction",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke()
    record = build_record(P=args.partitions)
    failures = check_record(record)
    # charged-io-ok: host-side benchmark report, not simulated graph I/O
    with open(args.out, "w") as f:
        json.dump(record, f, indent=2)
        f.write("\n")
    bytes_entry = record["on_disk_bytes"]
    for label in ("unweighted", "weighted"):
        e = bytes_entry[label]
        print(
            f"{label}: {e['raw_edge_bytes']} B -> {e['compact_edge_bytes']} B "
            f"({e['reduction']:.2f}x)"
        )
    for algo, entry in record["workloads"].items():
        cell = entry["graphsd"]
        print(
            f"{algo}: sim {cell['raw_sim_seconds']:.3f}s -> "
            f"{cell['compact_sim_seconds']:.3f}s ({cell['sim_speedup']:.2f}x, "
            f"identical={cell['identical_results']})"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    print(f"wrote {args.out}")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
