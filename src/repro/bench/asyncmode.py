"""Asynchronous-execution benchmark: priority sweeps vs BSP (BENCH_6).

Runs the monotonic workloads through both schedules on the flagship
system: the adaptive synchronous engine (``graphsd``) as the reference,
and the priority-driven asynchronous engine (``graphsd-async``, see
:mod:`repro.core.async_engine`) in four I/O configurations (serial and
pipelined, gather lanes K ∈ {1, 4}).

Acceptance gates (:func:`check_record`):

* **Fixed-point identity** — every async run's final values equal the
  synchronous run's bit for bit (the convergence-harness check,
  :func:`repro.core.convergence.fixed_point_diff`), for every workload
  and every I/O configuration.
* **Less work** — on at least :data:`MIN_ALGOS_REQUIRED` of the
  MIN-combine workloads, async needs >= :data:`REDUCTION_GATE` x fewer
  sweeps than BSP iterations *or* >= that factor fewer sub-block
  gathers, with strictly lower simulated time.
* **Composition** — priority ordering must not disturb the pipelined
  prefetcher or the gather lanes: for the MIN workloads all four
  configurations agree bitwise with the serial baseline.

PR-D is gated on fixed-point identity only: its ADD-combine merges are
order-sensitive, so the async engine intentionally keeps the classic
round schedule for it (same work, same bits). Its reference is a
synchronous run under the *same* I/O configuration — ``gather_lanes``
feeds the scheduler's on-demand cost model, so lane count can flip
FULL/ON_DEMAND decisions and with them the (order-sensitive) ADD merge
grouping; bit-equality is promised per configuration, not across them.

``python -m repro.bench.asyncmode`` writes ``BENCH_6.json``; ``--smoke``
runs the same gates on a small generated R-MAT graph and exits nonzero
on any violation — the CI guard for the asynchronous layer.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import Harness
from repro.core import RunResult
from repro.core.convergence import fixed_point_diff

#: MIN-combine workloads: bitwise order-independent fixed points, where
#: async sweeps genuinely reorder and batch the propagation.
RECORD_ALGOS_MIN: Sequence[str] = ("sssp", "cc", "sswp", "bfs")
#: ADD-combine monotonic workloads: async keeps the classic schedule.
RECORD_ALGOS_ADD: Sequence[str] = ("pr-d",)
RECORD_DATASET = "twitter2010"
BENCH_ID = "BENCH_6"
#: (pipeline, gather_lanes) composition grid every workload runs under.
RECORD_CONFIGS: Sequence = ((False, 1), (True, 1), (False, 4), (True, 4))
#: Required work reduction (sweeps or sub-block gathers) ...
REDUCTION_GATE = 1.2
#: ... on at least this many MIN-combine workloads.
MIN_ALGOS_REQUIRED = 3


def _config_key(pipeline: bool, lanes: int) -> str:
    return f"{'pipelined' if pipeline else 'serial'}-K{lanes}"


def _run_entry(run: RunResult) -> Dict[str, object]:
    return {
        "iterations": run.iterations,
        "sweeps": run.sweeps,
        "subblocks_processed": run.subblocks_processed,
        "sim_seconds": run.sim_seconds,
        "io_seconds": run.io_seconds,
        "io_bytes": run.io_traffic,
        "values_sha256": run.values_sha256(),
    }


def _bench_workload(
    harness: Harness, algo: str, dataset: str
) -> Dict[str, object]:
    """One workload's sync-vs-async comparison across the config grid."""
    sync = harness.run("graphsd", algo, dataset)
    configs: Dict[str, object] = {}
    async_base: Optional[RunResult] = None
    for pipeline, lanes in RECORD_CONFIGS:
        run = harness.run(
            "graphsd", algo, dataset,
            async_mode=True, pipeline=pipeline, gather_lanes=lanes,
        )
        if async_base is None:
            async_base = run
        # MIN fixed points are configuration-invariant, so every config
        # is held to the one serial baseline. ADD-combine bits depend on
        # the merge schedule, and gather_lanes feeds the scheduler's
        # on-demand cost model (lanes flip FULL/ON_DEMAND decisions), so
        # an ADD config's reference is a *synchronous* run under the
        # same I/O configuration — that is the pair the engine promises
        # bit-equality for.
        if algo in RECORD_ALGOS_ADD:
            reference = harness.run(
                "graphsd", algo, dataset,
                pipeline=pipeline, gather_lanes=lanes,
            )
        else:
            reference = sync
        diffs = fixed_point_diff(run, reference)
        configs[_config_key(pipeline, lanes)] = dict(
            _run_entry(run),
            identical_fixed_point=not diffs,
            diffs=diffs,
            sim_speedup=reference.sim_seconds / run.sim_seconds,
        )
    sweeps = async_base.sweeps or async_base.iterations
    return {
        "sync": _run_entry(sync),
        "async": _run_entry(async_base),
        "identical_fixed_point": not fixed_point_diff(async_base, sync),
        "sweep_reduction": sync.iterations / max(1, sweeps),
        "gather_reduction": (
            sync.subblocks_processed / max(1, async_base.subblocks_processed)
        ),
        "sim_speedup": sync.sim_seconds / async_base.sim_seconds,
        "configs": configs,
    }


def build_record(
    dataset: str = RECORD_DATASET,
    P: int = 8,
) -> Dict[str, object]:
    """The ``BENCH_6.json`` payload."""
    with Harness(P=P) as harness:
        record: Dict[str, object] = {
            "bench_id": BENCH_ID,
            "description": "priority-driven async sweeps vs BSP iterations",
            "dataset": dataset,
            "partitions": P,
            "machine": "default (HDD profile)",
            "reduction_gate": REDUCTION_GATE,
            "min_algorithms_required": MIN_ALGOS_REQUIRED,
            "workloads": {},
        }
        for algo in (*RECORD_ALGOS_MIN, *RECORD_ALGOS_ADD):
            record["workloads"][algo] = _bench_workload(harness, algo, dataset)
    return record


def check_record(record: Dict[str, object]) -> List[str]:
    """The PR's acceptance properties, as human-readable failures."""
    failures: List[str] = []
    passing_min = 0
    for algo, entry in record["workloads"].items():
        if not entry["identical_fixed_point"]:
            failures.append(f"{algo}: async fixed point differs from BSP")
        for name, cell in entry["configs"].items():
            if not cell["identical_fixed_point"]:
                failures.append(
                    f"{algo}/{name}: fixed point differs: {cell['diffs']}"
                )
        if algo in RECORD_ALGOS_MIN:
            reduction = max(entry["sweep_reduction"], entry["gather_reduction"])
            faster = entry["async"]["sim_seconds"] < entry["sync"]["sim_seconds"]
            if reduction >= REDUCTION_GATE and faster:
                passing_min += 1
    if passing_min < MIN_ALGOS_REQUIRED:
        failures.append(
            f"only {passing_min} MIN workloads cleared the "
            f">= {REDUCTION_GATE}x work reduction with lower simulated time "
            f"(need {MIN_ALGOS_REQUIRED})"
        )
    return failures


def smoke(scale: int = 11, edge_factor: float = 12.0, P: int = 4) -> int:
    """CI guard: fixed-point identity + fewer sweeps on a small R-MAT.

    Builds one generated graph, runs SSSP / CC / PR-D through both
    engines (async additionally pipelined and at K=4), and requires a
    bitwise-identical fixed point everywhere, fewer async sweeps than
    BSP iterations for the MIN workloads, and refusal of plain PageRank.
    Exit 0 iff all hold.
    """
    import pathlib
    import tempfile

    from repro.algorithms import make_program
    from repro.algorithms.base import GraphContext
    from repro.core import AsyncGraphSDEngine, GraphSDConfig, GraphSDEngine
    from repro.datasets.rmat import rmat_edges
    from repro.datasets.synthetic import with_uniform_weights
    from repro.graph import GridStore, make_intervals
    from repro.storage import Device

    failures: List[str] = []
    root = pathlib.Path(tempfile.mkdtemp(prefix="async-smoke-"))
    edges = with_uniform_weights(rmat_edges(scale, edge_factor, seed=42), seed=43)

    def build(edge_list, name):
        intervals = make_intervals(edge_list, P)
        return GridStore.build(
            edge_list, intervals, Device(root / name), prefix="g", indexed=True
        )

    cases = {
        "sssp": (edges, make_program("sssp")),
        "cc": (edges.symmetrized(), make_program("cc")),
        "pr-d": (edges, make_program("pagerank_delta", iterations=20)),
    }
    def fresh_program(algo: str):
        if algo == "pr-d":
            return make_program("pagerank_delta", iterations=20)
        return make_program(cases[algo][1].name)

    for algo, (edge_list, _prog) in cases.items():
        ctx = GraphContext.from_edges(edge_list)
        sync_store = build(edge_list, f"sync-{algo}")
        sync = GraphSDEngine(sync_store, ctx=ctx).run(cases[algo][1])
        for pipeline, lanes in RECORD_CONFIGS:
            cfg = GraphSDConfig(
                pipeline=pipeline, gather_lanes=lanes, prefetch_depth=2
            )
            store = build(edge_list, f"async-{algo}-{pipeline}-{lanes}")
            run = AsyncGraphSDEngine(store, config=cfg, ctx=ctx).run(
                fresh_program(algo)
            )
            tag = f"{algo}/{_config_key(pipeline, lanes)}"
            # ADD-combine bits are schedule-dependent and gather_lanes
            # feeds the scheduler's cost model, so PR-D's reference is a
            # synchronous run under the same configuration; MIN fixed
            # points are configuration-invariant.
            if algo == "pr-d":
                ref_store = build(edge_list, f"ref-{algo}-{pipeline}-{lanes}")
                reference = GraphSDEngine(ref_store, config=cfg, ctx=ctx).run(
                    fresh_program(algo)
                )
            else:
                reference = sync
            diffs = fixed_point_diff(run, reference)
            if diffs:
                failures.append(f"{tag}: {'; '.join(diffs)}")
            if algo != "pr-d":
                if not (run.sweeps or 0) < sync.iterations:
                    failures.append(
                        f"{tag}: {run.sweeps} sweeps not below "
                        f"{sync.iterations} BSP iterations"
                    )
                if not run.sim_seconds < sync.sim_seconds:
                    failures.append(
                        f"{tag}: async simulated time {run.sim_seconds:.4f}s "
                        f"not below BSP's {sync.sim_seconds:.4f}s"
                    )
            print(
                f"{tag}: sweeps={run.sweeps} (BSP iters={sync.iterations}), "
                f"subblocks {reference.subblocks_processed} -> "
                f"{run.subblocks_processed}, sim {reference.sim_seconds:.4f}s "
                f"-> {run.sim_seconds:.4f}s, identical={not diffs}"
            )

    try:
        store = build(edges, "refusal")
        AsyncGraphSDEngine(store, ctx=GraphContext.from_edges(edges)).run(
            make_program("pagerank")
        )
        failures.append("pagerank: async engine did not refuse a non-monotonic program")
    except ValueError:
        print("pagerank: refused by the async engine (non-monotonic), as required")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            "OK: async fixed points are bit-identical under every "
            "configuration, with fewer sweeps and lower simulated time "
            "on the MIN workloads"
        )
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.asyncmode",
        description="Asynchronous priority sweeps vs BSP benchmark "
        "(writes BENCH_6.json).",
    )
    parser.add_argument(
        "--out", default="BENCH_6.json", help="record path (default: BENCH_6.json)"
    )
    parser.add_argument("-P", "--partitions", type=int, default=8)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small R-MAT guard: bitwise fixed-point identity across all "
        "async configurations plus fewer sweeps than BSP iterations; "
        "exit nonzero on any violation",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke()
    record = build_record(P=args.partitions)
    failures = check_record(record)
    # charged-io-ok: host-side benchmark report, not simulated graph I/O
    with open(args.out, "w") as f:
        json.dump(record, f, indent=2)
        f.write("\n")
    for algo, entry in record["workloads"].items():
        print(
            f"{algo}: {entry['sync']['iterations']} BSP iters -> "
            f"{entry['async']['sweeps']} sweeps "
            f"({entry['sweep_reduction']:.2f}x), gathers "
            f"{entry['sync']['subblocks_processed']} -> "
            f"{entry['async']['subblocks_processed']} "
            f"({entry['gather_reduction']:.2f}x), sim speedup "
            f"{entry['sim_speedup']:.2f}x, identical="
            f"{entry['identical_fixed_point']}"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    print(f"wrote {args.out}")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
