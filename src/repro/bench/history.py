"""Perf-regression sentinel over the committed ``BENCH_*.json`` history.

Every bench record in the repo (BENCH_2 overlap, BENCH_3 encoding,
BENCH_4 cluster scaling, BENCH_6 async execution) carries exact
simulated figures — times, I/O traffic, iteration counts, result
hashes. This module re-runs a representative subset of each record's
cells on the current code and compares fresh against recorded with
explicit tolerances, so ``graphsd bench check`` (and CI's
``bench-check`` job) turns a silent perf regression into a nonzero
exit.

Tolerance policy (each :class:`Comparison` names the rule it applied):

* **time** — simulated seconds may drift by float-fold reordering
  across refactors (observed: last-ulp differences), so a regression is
  ``fresh > recorded × (1 + SIM_REL_TOL)``. Getting *faster* is
  reported but never fails.
* **bytes** — traffic counters are integer-exact by construction;
  a regression is ``fresh > recorded × (1 + BYTES_REL_TOL)``.
* **exact** — iteration counts, message counts, byte layouts, result
  hashes, and identity flags must match exactly: any change means the
  algorithm's behavior changed and the record must be regenerated
  deliberately.

Bench ids without a reproducer here (e.g. BENCH_5's K-lane grid, whose
record already embeds its own invariant checks) are listed as skipped,
never silently passed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

#: Simulated-seconds regression threshold (a doctored 10% slip trips it).
SIM_REL_TOL = 0.05
#: Byte-counter regression threshold.
BYTES_REL_TOL = 0.01


@dataclass(frozen=True)
class Comparison:
    """One recorded-vs-fresh metric comparison."""

    bench_id: str
    cell: str
    metric: str
    recorded: Any
    fresh: Any
    rule: str  # "time" | "bytes" | "exact"
    ok: bool
    note: str = ""

    def render(self) -> str:
        mark = "ok  " if self.ok else "FAIL"
        extra = f"  ({self.note})" if self.note else ""
        return (
            f"  {mark} {self.bench_id} {self.cell}.{self.metric} "
            f"[{self.rule}]: recorded={self.recorded} fresh={self.fresh}{extra}"
        )


@dataclass
class CheckReport:
    """All comparisons of one ``graphsd bench check`` invocation."""

    comparisons: List[Comparison] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)

    def failures(self) -> List[Comparison]:
        return [c for c in self.comparisons if not c.ok]

    def render(self) -> str:
        lines = [f"bench check: {len(self.comparisons)} comparisons"]
        lines.extend(c.render() for c in self.comparisons)
        for s in self.skipped:
            lines.append(f"  skip {s}")
        failures = self.failures()
        if failures:
            lines.append(f"REGRESSIONS: {len(failures)}")
        else:
            lines.append("no regressions")
        return "\n".join(lines) + "\n"


class _Cells:
    """Comparison collector bound to one bench record."""

    def __init__(self, bench_id: str, out: List[Comparison]) -> None:
        self.bench_id = bench_id
        self.out = out

    def time(self, cell: str, metric: str, recorded: float, fresh: float) -> None:
        ok = float(fresh) <= float(recorded) * (1.0 + SIM_REL_TOL)
        note = ""
        if ok and float(fresh) < float(recorded) * (1.0 - SIM_REL_TOL):
            note = "improved"
        self.out.append(
            Comparison(self.bench_id, cell, metric, recorded, fresh, "time", ok, note)
        )

    def bytes(self, cell: str, metric: str, recorded: float, fresh: float) -> None:
        ok = float(fresh) <= float(recorded) * (1.0 + BYTES_REL_TOL)
        self.out.append(
            Comparison(self.bench_id, cell, metric, recorded, fresh, "bytes", ok)
        )

    def exact(self, cell: str, metric: str, recorded: Any, fresh: Any) -> None:
        ok = bool(recorded == fresh)
        self.out.append(
            Comparison(self.bench_id, cell, metric, recorded, fresh, "exact", ok)
        )


def _check_bench2(record: Mapping[str, Any], smoke: bool, out: List[Comparison]) -> None:
    """Re-run BENCH_2 overlap cells (serial vs pipelined)."""
    from repro.bench.overlap import _identical, _run_pair

    cells = _Cells(str(record["bench_id"]), out)
    workloads: Mapping[str, Any] = record["workloads"]
    algos = ["pr"] if smoke else sorted(workloads)
    for algo in algos:
        rec = workloads.get(algo)
        if rec is None:
            continue
        runs = _run_pair(
            str(record["dataset"]),
            algo,
            int(record["partitions"]),
            int(record["prefetch_depth"]),
        )
        for mode in ("serial", "pipelined"):
            cell = f"workloads.{algo}.{mode}"
            cells.time(cell, "sim_seconds", rec[mode]["sim_seconds"], runs[mode].sim_seconds)
            cells.bytes(cell, "io_traffic_bytes", rec[mode]["io_traffic_bytes"], runs[mode].io_traffic)
            cells.exact(cell, "iterations", rec[mode]["iterations"], runs[mode].iterations)
        cells.exact(
            f"workloads.{algo}",
            "identical_results",
            rec["identical_results"],
            _identical(runs["serial"], runs["pipelined"]),
        )


def _check_bench3(record: Mapping[str, Any], smoke: bool, out: List[Comparison]) -> None:
    """Re-derive BENCH_3's on-disk edge-byte layout (preprocessing only)."""
    if smoke:
        return
    from repro.bench.harness import Harness, WORKLOADS

    cells = _Cells(str(record["bench_id"]), out)
    dataset = str(record["dataset"])
    P = int(record["partitions"])
    on_disk: Mapping[str, Any] = record["on_disk_bytes"]
    with Harness(P=P, encoding="raw") as h_raw, Harness(P=P, encoding="compact") as h_comp:
        for label, workload_key in (("unweighted", "pr"), ("weighted", "sssp")):
            rec = on_disk.get(label)
            if rec is None:
                continue
            raw_store, _ = h_raw.preprocess("graphsd", dataset, WORKLOADS[workload_key])
            comp_store, _ = h_comp.preprocess("graphsd", dataset, WORKLOADS[workload_key])
            cell = f"on_disk_bytes.{label}"
            cells.exact(cell, "raw_edge_bytes", rec["raw_edge_bytes"], raw_store.total_edge_bytes)
            cells.exact(cell, "compact_edge_bytes", rec["compact_edge_bytes"], comp_store.total_edge_bytes)
            cells.exact(cell, "edges", rec["edges"], raw_store.total_edges)


def _check_bench4(record: Mapping[str, Any], smoke: bool, out: List[Comparison]) -> None:
    """Re-run BENCH_4 cluster scaling cells (fault-free N=1 and N=4)."""
    from repro.bench.cluster import _identical
    from repro.bench.harness import Harness

    cells = _Cells(str(record["bench_id"]), out)
    workloads: Mapping[str, Any] = record["workloads"]
    algos = ["pr"] if smoke else sorted(workloads)
    with Harness(P=int(record["partitions"])) as harness:
        for algo in algos:
            rec = workloads.get(algo)
            if rec is None:
                continue
            by_workers: Mapping[str, Any] = rec["by_workers"]
            runs: Dict[int, Any] = {}
            for n in (1, 4):
                cell_rec = by_workers.get(str(n))
                if cell_rec is None:
                    continue
                r = harness.run_cluster(
                    algo,
                    str(record["dataset"]),
                    workers=n,
                    interconnect=str(record.get("interconnect", "eth10")),
                )
                runs[n] = r
                cell = f"workloads.{algo}.by_workers.{n}"
                cells.time(cell, "sim_seconds", cell_rec["sim_seconds"], r.sim_seconds)
                cells.bytes(cell, "io_bytes", cell_rec["io_bytes"], r.io_traffic)
                cells.exact(cell, "messages_sent", cell_rec["messages_sent"], int(r.recovery.get("messages_sent", 0)))
                cells.exact(cell, "network_bytes", cell_rec["network_bytes"], int(r.recovery.get("bytes_sent", 0)))
                cells.exact(cell, "iterations", cell_rec["iterations"], r.iterations)
            if 1 in runs:
                cells.exact(
                    f"workloads.{algo}",
                    "values_sha256",
                    rec["values_sha256"],
                    runs[1].values_sha256(),
                )
            if 1 in runs and 4 in runs:
                cells.exact(
                    f"workloads.{algo}.by_workers.4",
                    "identical_to_single_worker",
                    by_workers["4"]["identical_to_single_worker"],
                    _identical(runs[1], runs[4]),
                )


def _check_bench6(record: Mapping[str, Any], smoke: bool, out: List[Comparison]) -> None:
    """Re-run BENCH_6 sync vs async (serial K=1 config) cells."""
    from repro.bench.harness import Harness

    cells = _Cells(str(record["bench_id"]), out)
    workloads: Mapping[str, Any] = record["workloads"]
    algos = ["sssp"] if smoke else sorted(workloads)
    with Harness(P=int(record["partitions"])) as harness:
        for algo in algos:
            rec = workloads.get(algo)
            if rec is None:
                continue
            dataset = str(record["dataset"])
            sync = harness.run("graphsd", algo, dataset)
            a = harness.run(
                "graphsd", algo, dataset,
                async_mode=True, pipeline=False, gather_lanes=1,
            )
            for mode, fresh in (("sync", sync), ("async", a)):
                cell = f"workloads.{algo}.{mode}"
                cells.time(cell, "sim_seconds", rec[mode]["sim_seconds"], fresh.sim_seconds)
                cells.bytes(cell, "io_bytes", rec[mode]["io_bytes"], fresh.io_traffic)
                cells.exact(cell, "iterations", rec[mode]["iterations"], fresh.iterations)
                cells.exact(cell, "values_sha256", rec[mode]["values_sha256"], fresh.values_sha256())


#: bench_id -> reproducer. Each re-runs cells and appends Comparisons.
_CHECKERS: Dict[str, Callable[[Mapping[str, Any], bool, List[Comparison]], None]] = {
    "BENCH_2": _check_bench2,
    "BENCH_3": _check_bench3,
    "BENCH_4": _check_bench4,
    "BENCH_6": _check_bench6,
}


def load_records(bench_dir: Path) -> List[Dict[str, Any]]:
    """Load every ``BENCH_*.json`` under ``bench_dir``, sorted by name."""
    records = []
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        # charged-io-ok: host-side bench records, not simulated graph I/O
        with open(path, "r") as f:
            record = json.load(f)
        if not isinstance(record, dict) or "bench_id" not in record:
            raise ValueError(f"{path} is not a bench record (no bench_id)")
        records.append(record)
    return records


def check_history(
    bench_dir: Path,
    smoke: bool = False,
    only: Optional[Sequence[str]] = None,
) -> CheckReport:
    """Compare fresh runs against every recorded baseline in ``bench_dir``.

    ``smoke`` restricts each reproducer to its cheapest representative
    cell (CI's bench-check budget); ``only`` restricts to the given
    bench ids. Records whose id has no reproducer are reported as
    skipped.
    """
    report = CheckReport()
    records = load_records(bench_dir)
    if not records:
        raise ValueError(f"no BENCH_*.json records found in {bench_dir}")
    for record in records:
        bench_id = str(record["bench_id"])
        if only and bench_id not in only:
            report.skipped.append(f"{bench_id}: excluded by --only")
            continue
        checker = _CHECKERS.get(bench_id)
        if checker is None:
            report.skipped.append(f"{bench_id}: no reproducer")
            continue
        if smoke and bench_id == "BENCH_3":
            report.skipped.append(f"{bench_id}: full mode only")
            continue
        checker(record, smoke, report.comparisons)
    return report
