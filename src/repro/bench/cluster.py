"""Cluster benchmark: sharded scaling + fault-matrix bit-identity (BENCH_4).

Runs the paper's headline workloads on the simulated N-worker cluster
(:mod:`repro.cluster`) and records two things:

* **scaling** — simulated execution time at N ∈ {1, 2, 4} workers on the
  twitter2010 proxy over the default 10 GbE interconnect. Sharding the
  grid by destination column divides both the edge-block reads and the
  value-slice I/O across private disks; the barrier model credits the
  parallel portion, so N=4 must beat N=1 by ≥ 1.6× despite broadcast
  traffic;
* **robustness** — a fault matrix at N=4 (mid-superstep worker crash,
  dropped + duplicated + corrupted messages, one deliberately slow disk
  degraded out of the cluster), every cell required to produce values
  *bit-identical* to the clean single-worker run.

``python -m repro.bench.cluster`` writes ``BENCH_4.json``; ``--smoke``
runs a small R-MAT graph through a 4-worker cluster with an injected
mid-superstep crash and a dropped-message plan and exits nonzero unless
the result is bit-identical to the single-worker run — the CI guard for
the cluster layer (the ``cluster-smoke`` job).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.bench.harness import Harness
from repro.core import RunResult
from repro.storage import FaultPlan, FaultSpec

RECORD_ALGOS: Sequence[str] = ("pr", "cc", "sssp")
RECORD_WORKERS: Sequence[int] = (1, 2, 4)
RECORD_DATASET = "twitter2010"
BENCH_ID = "BENCH_4"
#: The scaling floor the record is checked against (N=4 vs N=1).
MIN_SCALING_N4 = 1.6

#: The N=4 robustness matrix: every plan must leave results bit-identical.
FAULT_MATRIX: Dict[str, Dict[str, object]] = {
    "crash-mid-superstep": {
        "fault_plan": FaultPlan(crash_points={"w1:post-compute": 2}),
        "expect": {"worker_recoveries": 1},
    },
    "crash-mid-checkpoint": {
        "fault_plan": FaultPlan(crash_points={"w2:mid-checkpoint": 3}),
        "expect": {"worker_recoveries": 1},
    },
    "message-faults": {
        "fault_plan": FaultPlan(
            specs=(
                FaultSpec(kind="msg-drop", pattern="w0->w2", at_op=4, count=2),
                FaultSpec(kind="msg-corrupt", pattern="w1->*", at_op=7, count=1),
                FaultSpec(kind="msg-dup", pattern="*", at_op=9, count=3),
            )
        ),
        "expect": {"msgs_dropped": 2, "msgs_corrupted": 1, "msgs_duplicated": 3},
    },
    "straggler": {
        "worker_disk_factors": {3: 0.05},
        "expect": {"stragglers_degraded": 1, "workers_final": 3},
    },
}


def _identical(a: RunResult, b: RunResult) -> bool:
    return (
        bool(np.array_equal(a.values, b.values, equal_nan=True))
        and a.iterations == b.iterations
        and a.converged == b.converged
    )


def build_record(
    dataset: str = RECORD_DATASET,
    algorithms: Sequence[str] = RECORD_ALGOS,
    workers: Sequence[int] = RECORD_WORKERS,
    P: int = 8,
) -> Dict[str, object]:
    """The ``BENCH_4.json`` payload."""
    with Harness(P=P) as harness:
        record: Dict[str, object] = {
            "bench_id": BENCH_ID,
            "description": "sharded multi-worker scaling + fault-matrix bit-identity",
            "dataset": dataset,
            "partitions": P,
            "interconnect": "eth10",
            "machine": "default (HDD profile per worker)",
            "workloads": {},
            "fault_matrix": {},
        }
        baselines: Dict[str, RunResult] = {}
        for algo in algorithms:
            entry: Dict[str, object] = {"by_workers": {}}
            runs: Dict[int, RunResult] = {}
            for n in workers:
                runs[n] = harness.run_cluster(algo, dataset, workers=n)
                r = runs[n]
                entry["by_workers"][str(n)] = {
                    "sim_seconds": r.sim_seconds,
                    "overlap_saved_seconds": r.overlap_saved_seconds,
                    "io_bytes": r.io_traffic,
                    "messages_sent": r.recovery.get("messages_sent", 0),
                    "network_bytes": r.recovery.get("bytes_sent", 0),
                    "iterations": r.iterations,
                    "identical_to_single_worker": _identical(runs[workers[0]], r),
                }
            base = runs[workers[0]]
            entry["scaling_n4"] = (
                base.sim_seconds / runs[4].sim_seconds if 4 in runs else None
            )
            entry["values_sha256"] = base.values_sha256()
            record["workloads"][algo] = entry
            baselines[algo] = base

        for name, cell in FAULT_MATRIX.items():
            cell_entry: Dict[str, object] = {}
            for algo in algorithms:
                r = harness.run_cluster(
                    algo,
                    dataset,
                    workers=4,
                    fault_plan=cell.get("fault_plan"),
                    worker_disk_factors=cell.get("worker_disk_factors"),
                )
                expected = dict(cell["expect"])
                cell_entry[algo] = {
                    "identical_to_clean_run": _identical(baselines[algo], r),
                    "fault_events": list(r.fault_events),
                    "recovery": {
                        k: v for k, v in r.recovery.items() if not isinstance(v, float)
                    },
                    "expected_counters_met": all(
                        r.recovery.get(k, 0) >= v for k, v in expected.items()
                    ),
                }
            record["fault_matrix"][name] = cell_entry
    return record


def check_record(record: Dict[str, object]) -> List[str]:
    """The PR's acceptance properties, as human-readable failures."""
    failures: List[str] = []
    for algo, entry in record["workloads"].items():
        scaling = entry.get("scaling_n4")
        if scaling is not None and algo == "pr" and scaling < MIN_SCALING_N4:
            failures.append(
                f"{algo}: N=4 scaling {scaling:.2f}x below {MIN_SCALING_N4}x"
            )
        for n, cell in entry["by_workers"].items():
            if not cell["identical_to_single_worker"]:
                failures.append(f"{algo}: N={n} values differ from single-worker")
    for name, cell_entry in record["fault_matrix"].items():
        for algo, cell in cell_entry.items():
            if not cell["identical_to_clean_run"]:
                failures.append(f"{name}/{algo}: values differ from the clean run")
            if not cell["expected_counters_met"]:
                failures.append(f"{name}/{algo}: expected recovery counters not met")
    return failures


def smoke(
    scale: int = 11,
    edge_factor: float = 12.0,
    P: int = 4,
    trace_out: Optional[str] = None,
) -> int:
    """CI guard (the ``cluster-smoke`` job): crash + dropped messages.

    Runs PageRank and SSSP on a small R-MAT graph through a 4-worker
    cluster with a mid-superstep worker crash and a dropped-message
    plan injected, and requires values bit-identical to the clean
    single-worker run plus nonzero recovery counters. Exit 0 iff all
    hold.

    With ``trace_out`` set, the faulted 4-worker runs are traced: the
    merged distributed trace, its Perfetto export, and the critical-path
    report are written into that directory (the CI artifact), and the
    traced runs must stay bit-identical — exercising the whole
    observability path under faults.
    """
    import pathlib
    import tempfile

    from repro.algorithms import PageRank, SSSP
    from repro.algorithms.base import GraphContext
    from repro.cluster import ClusterConfig, ClusterEngine
    from repro.datasets.rmat import rmat_edges
    from repro.datasets.synthetic import with_uniform_weights
    from repro.graph import GridStore, make_intervals
    from repro.graph.degree import out_degrees
    from repro.obs import Tracer, analyze_file, export_file
    from repro.storage import Device

    failures: List[str] = []
    root = pathlib.Path(tempfile.mkdtemp(prefix="cluster-smoke-"))
    trace_dir = None
    if trace_out is not None:
        trace_dir = pathlib.Path(trace_out)
        trace_dir.mkdir(parents=True, exist_ok=True)
    plan = FaultPlan(
        crash_points={"w1:post-compute": 2},
        specs=(FaultSpec(kind="msg-drop", pattern="w0->*", at_op=3, count=2),),
    )
    for name, algo, weighted in (
        ("pr", PageRank(iterations=5), False),
        ("sssp", SSSP(source=0), True),
    ):
        edges = rmat_edges(scale, edge_factor, seed=42)
        if weighted:
            edges = with_uniform_weights(edges, seed=42)
        intervals = make_intervals(edges, P)
        store = GridStore.build(
            edges, intervals, Device(root / f"{name}-grid"), prefix="g", indexed=True
        )
        ctx = GraphContext(
            num_vertices=edges.num_vertices,
            num_edges=edges.num_edges,
            out_degrees=out_degrees(edges),
        )
        results: Dict[str, RunResult] = {}
        for label, n, cell_plan in (
            ("single", 1, None),
            ("cluster", 4, plan),
        ):
            engine = ClusterEngine(
                store.device.root,
                "g",
                root / f"{name}-ws-{label}",
                ClusterConfig(workers=n, fault_plan=cell_plan),
                ctx=ctx,
            )
            if trace_dir is not None and label == "cluster":
                engine.attach_tracer(
                    Tracer(), path=str(trace_dir / f"{name}.trace.jsonl")
                )
            results[label] = engine.run(algo)
        single, cluster = results["single"], results["cluster"]
        if trace_dir is not None:
            trace_path = trace_dir / f"{name}.trace.jsonl"
            # analyze_file replays the timeline algebra bitwise (barrier
            # chain, per-worker deltas, run-record fold) and raises on
            # any violation. The makespan and the run total are two
            # *different* exact folds of the same charges (per-barrier
            # max-vs-sum vs run-level component sums), so they may
            # differ in the last ulp — compare with float slack only.
            report = analyze_file(str(trace_path))
            if not math.isclose(
                report.makespan, cluster.breakdown.total, rel_tol=1e-12
            ):
                failures.append(
                    f"{name}: traced makespan {report.makespan!r} far from "
                    f"run total {cluster.breakdown.total!r}"
                )
            export_file(str(trace_path), str(trace_dir / f"{name}.perfetto.json"))
            critpath_txt = trace_dir / f"{name}.critical-path.txt"
            # charged-io-ok: host-side CI artifact, not simulated graph I/O
            critpath_txt.write_text(report.render() + "\n")
            print(f"{name}: merged trace + Perfetto export in {trace_dir}")
        identical = _identical(single, cluster)
        if not identical:
            failures.append(f"{name}: 4-worker faulted run differs from single-worker")
        if cluster.recovery.get("worker_recoveries", 0) < 1:
            failures.append(f"{name}: the injected crash was never recovered")
        if cluster.recovery.get("msgs_dropped", 0) < 2:
            failures.append(f"{name}: the dropped messages were never injected")
        print(
            f"{name}: identical={identical}, "
            f"recoveries={cluster.recovery.get('worker_recoveries')}, "
            f"drops={cluster.recovery.get('msgs_dropped')}, "
            f"retries={cluster.recovery.get('net_retries')}, "
            f"events={cluster.fault_events}"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK: crashes recovered, drops retried, results bit-identical")
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.cluster",
        description="Sharded multi-worker scaling and fault-matrix benchmark "
        "(writes BENCH_4.json).",
    )
    parser.add_argument(
        "--out", default="BENCH_4.json", help="record path (default: BENCH_4.json)"
    )
    parser.add_argument("-P", "--partitions", type=int, default=8)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the 4-worker crash + dropped-message guard on a small "
        "R-MAT graph and exit nonzero unless bit-identical to single-worker",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="DIR",
        help="with --smoke: write the merged distributed trace, Perfetto "
        "export, and critical-path report of the faulted runs into DIR",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke(trace_out=args.trace_out)
    record = build_record(P=args.partitions)
    failures = check_record(record)
    # charged-io-ok: host-side benchmark report, not simulated graph I/O
    with open(args.out, "w") as f:
        json.dump(record, f, indent=2)
        f.write("\n")
    for algo, entry in record["workloads"].items():
        times = {
            n: cell["sim_seconds"] for n, cell in entry["by_workers"].items()
        }
        scaling = entry["scaling_n4"]
        print(
            f"{algo}: "
            + "  ".join(f"N={n} {t:.3f}s" for n, t in times.items())
            + (f"  (N=4 scaling {scaling:.2f}x)" if scaling else "")
        )
    for name, cell_entry in record["fault_matrix"].items():
        ok = all(
            c["identical_to_clean_run"] and c["expected_counters_met"]
            for c in cell_entry.values()
        )
        print(f"fault {name}: {'bit-identical across workloads' if ok else 'FAILED'}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    print(f"wrote {args.out}")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
