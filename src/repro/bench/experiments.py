"""Per-table / per-figure experiment definitions (§5 of the paper).

Each function drives the :class:`~repro.bench.harness.Harness` through
one evaluation artifact and returns an
:class:`~repro.bench.reporting.ExperimentReport` whose rows mirror the
paper's table/figure content. The benchmark scripts under
``benchmarks/`` call these and print the rendered reports; the same
reports populate EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.common import SYSTEM_FEATURES
from repro.bench.harness import Harness
from repro.bench.reporting import ExperimentReport, mib, normalize
from repro.core import RunResult
from repro.datasets import list_datasets

PAPER_ALGOS: Tuple[str, ...] = ("pr", "pr-d", "cc", "sssp")
PAPER_SYSTEMS: Tuple[str, ...] = ("graphsd", "husgraph", "lumos")


def _geomean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


def run_table1_features() -> ExperimentReport:
    """Table 1: the optimization matrix, from the implemented engines."""
    report = ExperimentReport(
        "table1",
        "Optimizations implemented by each system",
        ["system", "eliminates random accesses", "avoids inactive data", "future-value computation"],
    )
    mark = {True: "yes", False: "no"}
    for name, flags in SYSTEM_FEATURES.items():
        report.add_row(
            name,
            mark[flags["eliminates_random"]],
            mark[flags["avoids_inactive"]],
            mark[flags["future_value"]],
        )
    report.data["features"] = SYSTEM_FEATURES
    return report


def run_table4_fig5(
    harness: Harness,
    datasets: Optional[Sequence[str]] = None,
    algorithms: Sequence[str] = PAPER_ALGOS,
    systems: Sequence[str] = PAPER_SYSTEMS,
) -> Tuple[ExperimentReport, ExperimentReport]:
    """Table 4 (GraphSD absolute times) + Fig. 5 (normalized comparison).

    Returns ``(table4_report, fig5_report)``. Fig. 5 rows are normalized
    to GraphSD = 1.0, as in the paper's bar chart.
    """
    datasets = list(datasets) if datasets is not None else list_datasets()
    results: Dict[Tuple[str, str, str], RunResult] = {}
    for dataset in datasets:
        for algo in algorithms:
            for system in systems:
                results[(algo, dataset, system)] = harness.run(system, algo, dataset)

    table4 = ExperimentReport(
        "table4",
        "Execution time (simulated seconds) of GraphSD",
        ["dataset"] + [a.upper() for a in algorithms],
    )
    for dataset in datasets:
        table4.add_row(
            dataset, *[results[(a, dataset, "graphsd")].sim_seconds for a in algorithms]
        )

    fig5 = ExperimentReport(
        "fig5",
        "Overall execution time normalized to GraphSD (lower is better)",
        ["algorithm", "dataset"] + list(systems),
    )
    speedups: Dict[str, List[float]] = {s: [] for s in systems}
    for algo in algorithms:
        for dataset in datasets:
            times = {s: results[(algo, dataset, s)].sim_seconds for s in systems}
            norm = normalize(times, "graphsd")
            fig5.add_row(algo.upper(), dataset, *[norm[s] for s in systems])
            for s in systems:
                speedups[s].append(norm[s])
    for s in systems:
        if s == "graphsd":
            continue
        fig5.add_note(
            f"GraphSD vs {s}: average speedup {_geomean(speedups[s]):.2f}x, "
            f"max {max(speedups[s]):.2f}x"
        )
    fig5.data["results"] = {
        f"{a}/{d}/{s}": results[(a, d, s)].sim_seconds
        for (a, d, s) in results
    }
    table4.data["results"] = fig5.data["results"]
    return table4, fig5


def run_fig6_breakdown(
    harness: Harness,
    dataset: str = "twitter2010",
    algorithms: Sequence[str] = PAPER_ALGOS,
    systems: Sequence[str] = PAPER_SYSTEMS,
) -> ExperimentReport:
    """Fig. 6: runtime breakdown (disk I/O vs vertex updating) on Twitter."""
    report = ExperimentReport(
        "fig6",
        f"Runtime breakdown on {dataset} (simulated seconds)",
        ["algorithm", "system", "io", "compute", "scheduling", "total", "io %"],
    )
    io_by_system: Dict[str, float] = {s: 0.0 for s in systems}
    for algo in algorithms:
        for system in systems:
            r = harness.run(system, algo, dataset)
            b = r.breakdown
            io_by_system[system] += b.io
            report.add_row(
                algo.upper(),
                system,
                b.io,
                b.compute,
                b.scheduling,
                r.sim_seconds,
                f"{100 * b.io / r.sim_seconds:.0f}%",
            )
    for s in systems:
        if s != "graphsd":
            report.add_note(
                f"GraphSD total disk I/O time is "
                f"{100 * io_by_system['graphsd'] / io_by_system[s]:.0f}% of {s}'s"
            )
    report.data["io_by_system"] = io_by_system
    return report


def run_fig7_io_traffic(
    harness: Harness,
    datasets: Sequence[str] = ("twitter2010", "uk2007"),
    algorithms: Sequence[str] = PAPER_ALGOS,
    systems: Sequence[str] = PAPER_SYSTEMS,
) -> ExperimentReport:
    """Fig. 7: I/O traffic comparison."""
    report = ExperimentReport(
        "fig7",
        "I/O traffic (MiB moved to/from disk)",
        ["dataset", "algorithm"] + list(systems) + ["vs " + s for s in systems if s != "graphsd"],
    )
    ratios: Dict[str, List[float]] = {s: [] for s in systems if s != "graphsd"}
    for dataset in datasets:
        for algo in algorithms:
            traffic = {s: harness.run(s, algo, dataset).io_traffic for s in systems}
            row: List[object] = [dataset, algo.upper()]
            row += [mib(traffic[s]) for s in systems]
            for s in systems:
                if s == "graphsd":
                    continue
                ratio = traffic[s] / traffic["graphsd"]
                ratios[s].append(ratio)
                row.append(f"{ratio:.2f}x")
            report.add_row(*row)
    for s, values in ratios.items():
        report.add_note(f"{s} moves {_geomean(values):.2f}x the data of GraphSD on average")
    report.data["ratios"] = {s: _geomean(v) for s, v in ratios.items()}
    return report


def run_fig8_preprocessing(
    harness: Harness,
    datasets: Optional[Sequence[str]] = None,
    systems: Sequence[str] = PAPER_SYSTEMS,
) -> ExperimentReport:
    """Fig. 8: preprocessing time of the three systems."""
    datasets = list(datasets) if datasets is not None else list_datasets()
    report = ExperimentReport(
        "fig8",
        "Preprocessing time (simulated seconds)",
        ["dataset"] + list(systems),
    )
    totals = {s: 0.0 for s in systems}
    for dataset in datasets:
        times = {s: harness.preprocess_result(s, dataset).sim_seconds for s in systems}
        for s in systems:
            totals[s] += times[s]
        report.add_row(dataset, *[times[s] for s in systems])
    if "husgraph" in totals and "lumos" in totals and "graphsd" in totals:
        report.add_note(
            f"HUS-Graph preprocessing is {totals['husgraph'] / totals['lumos']:.2f}x Lumos "
            f"and {totals['husgraph'] / totals['graphsd']:.2f}x GraphSD "
            "(paper: 1.8x and 1.4x)"
        )
    report.data["totals"] = totals
    return report


def run_fig9_ablation(
    harness: Harness,
    dataset: str = "twitter2010",
    algorithms: Sequence[str] = PAPER_ALGOS,
) -> ExperimentReport:
    """Fig. 9: GraphSD vs -b1 (no cross-iteration) vs -b2 (no selective)."""
    systems = ("graphsd", "graphsd-b1", "graphsd-b2")
    report = ExperimentReport(
        "fig9",
        f"Update-strategy ablation on {dataset}",
        ["algorithm", "metric", "graphsd", "graphsd-b1", "graphsd-b2"],
    )
    time_ratio_b1, time_ratio_b2 = [], []
    io_ratio_b1, io_ratio_b2 = [], []
    for algo in algorithms:
        runs = {s: harness.run(s, algo, dataset) for s in systems}
        report.add_row(
            algo.upper(), "time (s)", *[runs[s].sim_seconds for s in systems]
        )
        report.add_row(
            algo.upper(), "I/O (MiB)", *[mib(runs[s].io_traffic) for s in systems]
        )
        base = runs["graphsd"]
        time_ratio_b1.append(runs["graphsd-b1"].sim_seconds / base.sim_seconds)
        time_ratio_b2.append(runs["graphsd-b2"].sim_seconds / base.sim_seconds)
        io_ratio_b1.append(runs["graphsd-b1"].io_traffic / base.io_traffic)
        io_ratio_b2.append(runs["graphsd-b2"].io_traffic / base.io_traffic)
    report.add_note(
        f"GraphSD outperforms b1 by {_geomean(time_ratio_b1):.2f}x and b2 by "
        f"{_geomean(time_ratio_b2):.2f}x (paper: 1.7x / 2.8x)"
    )
    report.add_note(
        f"I/O amount: {_geomean(io_ratio_b1):.2f}x less than b1, "
        f"{_geomean(io_ratio_b2):.2f}x less than b2 (paper: 1.6x / 5.4x)"
    )
    report.data["time_ratios"] = {
        "b1": _geomean(time_ratio_b1),
        "b2": _geomean(time_ratio_b2),
    }
    report.data["io_ratios"] = {
        "b1": _geomean(io_ratio_b1),
        "b2": _geomean(io_ratio_b2),
    }
    return report


def run_fig10_scheduler(
    harness: Harness,
    dataset: str = "ukunion",
    algorithm: str = "cc",
) -> ExperimentReport:
    """Fig. 10: per-iteration time, adaptive vs pinned I/O models."""
    systems = ("graphsd", "graphsd-b3", "graphsd-b4")
    runs = {s: harness.run(s, algorithm, dataset) for s in systems}
    report = ExperimentReport(
        "fig10",
        f"Per-iteration execution time of {algorithm.upper()} on {dataset} (s)",
        ["iteration", "graphsd", "model", "b3 (always full)", "b4 (always on-demand)"],
    )
    per_iter = {s: runs[s].per_iteration for s in systems}
    n_iters = max(len(v) for v in per_iter.values())
    adaptive_worse = 0
    for k in range(n_iters):
        row: List[object] = [k + 1]
        g = per_iter["graphsd"][k] if k < len(per_iter["graphsd"]) else None
        b3 = per_iter["graphsd-b3"][k] if k < len(per_iter["graphsd-b3"]) else None
        b4 = per_iter["graphsd-b4"][k] if k < len(per_iter["graphsd-b4"]) else None
        row.append(g.sim_seconds if g else "-")
        row.append(g.model if g else "-")
        row.append(b3.sim_seconds if b3 else "-")
        row.append(b4.sim_seconds if b4 else "-")
        report.add_row(*row)
        if g and b3 and b4 and g.sim_seconds > 1.05 * min(b3.sim_seconds, b4.sim_seconds):
            adaptive_worse += 1
    report.add_note(
        f"adaptive GraphSD within 5% of the per-iteration best model in "
        f"{n_iters - adaptive_worse}/{n_iters} iterations"
    )
    report.add_note(
        "totals: graphsd {:.2f}s, b3 {:.2f}s, b4 {:.2f}s".format(
            *[runs[s].sim_seconds for s in systems]
        )
    )
    report.data["totals"] = {s: runs[s].sim_seconds for s in systems}
    report.data["per_iteration"] = {
        s: [r.sim_seconds for r in runs[s].per_iteration] for s in systems
    }
    return report


def run_fig11_overhead(
    harness: Harness,
    dataset: str = "twitter2010",
    algorithms: Sequence[str] = PAPER_ALGOS,
) -> ExperimentReport:
    """Fig. 11: benefit-evaluation overhead vs the I/O time it saves.

    "Reduced I/O time" is measured against always-full (b3) execution —
    the behaviour a system without state-aware scheduling defaults to.
    """
    report = ExperimentReport(
        "fig11",
        f"State-aware scheduling: overhead vs reduced I/O time on {dataset}",
        ["algorithm", "evaluation overhead (s)", "reduced I/O time (s)", "ratio"],
    )
    for algo in algorithms:
        adaptive = harness.run("graphsd", algo, dataset)
        pinned_full = harness.run("graphsd-b3", algo, dataset)
        overhead = adaptive.breakdown.scheduling
        reduced = max(0.0, pinned_full.breakdown.io - adaptive.breakdown.io)
        ratio = reduced / overhead if overhead > 0 else float("inf")
        report.add_row(algo.upper(), overhead, reduced, f"{ratio:.0f}x" if overhead else "n/a")
    report.add_note("paper example: PR-D overhead 3.4s vs 158s reduced I/O")
    return report


def run_fig12_buffering(
    harness: Harness,
    dataset: str = "ukunion",
    algorithms: Sequence[str] = PAPER_ALGOS,
) -> ExperimentReport:
    """Fig. 12: effect of the sub-block buffering scheme."""
    report = ExperimentReport(
        "fig12",
        f"Sub-block buffering on {dataset}",
        ["algorithm", "with buffering (s)", "without (s)", "improvement"],
    )
    improvements = []
    for algo in algorithms:
        with_buf = harness.run("graphsd", algo, dataset)
        without = harness.run("graphsd-nobuffer", algo, dataset)
        gain = (without.sim_seconds - with_buf.sim_seconds) / without.sim_seconds
        improvements.append(gain)
        report.add_row(
            algo.upper(), with_buf.sim_seconds, without.sim_seconds, f"{100 * gain:.1f}%"
        )
    report.add_note(
        f"max improvement {100 * max(improvements):.1f}% (paper: up to 21%)"
    )
    report.data["improvements"] = improvements
    return report
