"""Benchmark harness reproducing every table and figure of §5."""

from repro.bench.harness import Harness, SYSTEMS, SystemSpec, WORKLOADS, Workload
from repro.bench.reporting import ExperimentReport, format_table, mib, normalize
from repro.bench.traces import comparison_csv, iteration_rows, iteration_trace_csv
from repro.bench.experiments import (
    PAPER_ALGOS,
    PAPER_SYSTEMS,
    run_fig10_scheduler,
    run_fig11_overhead,
    run_fig12_buffering,
    run_fig6_breakdown,
    run_fig7_io_traffic,
    run_fig8_preprocessing,
    run_fig9_ablation,
    run_table1_features,
    run_table4_fig5,
)

__all__ = [
    "Harness",
    "SYSTEMS",
    "SystemSpec",
    "WORKLOADS",
    "Workload",
    "ExperimentReport",
    "format_table",
    "mib",
    "normalize",
    "PAPER_ALGOS",
    "PAPER_SYSTEMS",
    "run_fig10_scheduler",
    "run_fig11_overhead",
    "run_fig12_buffering",
    "run_fig6_breakdown",
    "run_fig7_io_traffic",
    "run_fig8_preprocessing",
    "run_fig9_ablation",
    "run_table1_features",
    "run_table4_fig5",
    "comparison_csv",
    "iteration_rows",
    "iteration_trace_csv",
]
