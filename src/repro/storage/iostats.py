"""Raw I/O traffic counters.

These counters are the ground truth behind the paper's Fig. 7 / Fig. 9(b)
"I/O traffic" comparisons: total bytes read and written, split by access
class, plus request counts and buffer-cache hit accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Tuple

#: Counters whose value depends on real thread timing rather than the
#: simulated execution. Equivalence comparisons (traced vs untraced,
#: pipelined vs serial) must ignore exactly these fields.
WALL_CLOCK_DEPENDENT_FIELDS: Tuple[str, ...] = ("prefetch_hits",)


@dataclass
class IOStats:
    """Cumulative I/O counters for one simulated disk.

    All byte counts are monotonically non-decreasing; snapshots can be
    subtracted to get per-phase traffic.
    """

    bytes_read_seq: int = 0
    bytes_read_ran: int = 0
    bytes_written_seq: int = 0
    bytes_written_ran: int = 0
    read_requests_seq: int = 0
    read_requests_ran: int = 0
    write_requests_seq: int = 0
    write_requests_ran: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    bytes_served_from_cache: int = 0
    # Fault/recovery accounting (see repro.storage.faults): requests
    # re-issued after a transient fault, and faults actually injected.
    read_retries: int = 0
    write_retries: int = 0
    faults_injected: int = 0
    # Prefetch-pipeline observability (see repro.storage.prefetch):
    # thunks completed by the background worker, results already decoded
    # when the consumer asked (wall-clock dependent — the only
    # nondeterministic counter here), lookahead work cancelled before
    # delivery, and bytes the block plan served from the §4.3 sub-block
    # buffer instead of disk.
    prefetch_issued: int = 0
    prefetch_hits: int = 0
    prefetch_wasted: int = 0
    buffer_hit_bytes: int = 0
    # Selective-gather pool observability (see repro.storage.gatherpool):
    # merged runs routed through the lane model, cumulative modeled busy
    # time across lanes, and the deepest any lane queue got. The peak is
    # max-tracked, so per-phase subtraction of snapshots is meaningless
    # for it (harmless: equivalence checks compare absolute values).
    gather_runs_issued: int = 0
    gather_lane_busy_seconds: float = 0.0
    gather_queue_peak: int = 0

    # -- derived -----------------------------------------------------------

    @property
    def bytes_read(self) -> int:
        return self.bytes_read_seq + self.bytes_read_ran

    @property
    def bytes_written(self) -> int:
        return self.bytes_written_seq + self.bytes_written_ran

    @property
    def total_traffic(self) -> int:
        """Total bytes moved to/from disk (the Fig. 7 metric)."""
        return self.bytes_read + self.bytes_written

    @property
    def read_requests(self) -> int:
        return self.read_requests_seq + self.read_requests_ran

    @property
    def write_requests(self) -> int:
        return self.write_requests_seq + self.write_requests_ran

    @property
    def retries(self) -> int:
        """Total requests re-issued after an absorbed transient fault."""
        return self.read_retries + self.write_retries

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    # -- algebra -----------------------------------------------------------

    def snapshot(self) -> "IOStats":
        """An independent copy of the current counters."""
        return IOStats(**{f.name: getattr(self, f.name) for f in fields(self)})

    def to_dict(self) -> Dict[str, float]:
        """Every raw counter by field name (stable JSON form)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __sub__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            **{f.name: getattr(self, f.name) - getattr(other, f.name) for f in fields(self)}
        )

    def __add__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            **{f.name: getattr(self, f.name) + getattr(other, f.name) for f in fields(self)}
        )

    def merge(self, other: "IOStats") -> None:
        """Fold another counter set into this one in place."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)
