"""Bounded-depth asynchronous block prefetching.

The engines' scatter loops are *plan-then-consume*: a round first builds
an ordered list of load thunks (the block plan — SCIU's selected active
blocks, FCIU's destination-major column sweep), then consumes the
decoded :class:`~repro.graph.grid.EdgeBlock`s one by one. The
:class:`BlockPrefetcher` sits between the two: a single background
worker thread executes the thunks strictly in plan order and hands the
results through a bounded queue, so disk reads for block ``k+1`` overlap
with the gather/apply compute of block ``k``.

Design constraints, all load-bearing:

* **One worker, strict plan order.** Every simulated-disk charge, page
  cache access and injected fault is keyed to the *sequence* of disk
  operations; a single in-order worker reproduces exactly the serial
  operation stream, which is why pipelined runs are bit-identical to
  serial runs (results, traffic counters, fault behaviour).
* **Depth 0 == inline.** With ``depth=0`` the thunks run synchronously
  on the consumer thread; serial and pipelined execution share one code
  path and differ only in *where* (and when) the thunks run.
* **Errors surface at the consumption point.** A thunk that raises —
  including injected :class:`~repro.storage.faults.FaultError`s and
  :class:`~repro.storage.faults.SimulatedCrash` (a ``BaseException``) —
  is delivered through the queue and re-raised to the consumer in plan
  order, so existing fault-handling paths (SCIU's GatherFault fallback,
  crash-recovery tests) work unchanged.
* **No deadlocks on abandonment.** All blocking queue operations poll a
  cancellation event; closing the iterator cancels the worker, drains
  the queue (counting undelivered results as ``prefetch_wasted``) and
  joins the thread.

Real threads genuinely help wall time here: :class:`ArrayFile` reads and
the numpy gather kernels both release the GIL.
"""

from __future__ import annotations

import queue
import threading
from typing import TYPE_CHECKING, Callable, Iterator, Optional, Sequence, TypeVar

from repro.obs.trace import NULL_TRACER
from repro.storage.iostats import IOStats
from repro.utils.validation import check_nonneg

if TYPE_CHECKING:
    from repro.obs import TracerLike

_T = TypeVar("_T")

#: Poll interval for cancellable blocking waits. Wall-clock only; has no
#: effect on simulated time or results.
_POLL_S = 0.02


class _Cancelled(Exception):
    """Internal: the pipeline was cancelled while a task was gated."""


class BlockPrefetcher:
    """Executes an ordered list of load thunks ahead of consumption.

    ``depth`` bounds how many completed results may sit undelivered in
    the hand-off queue (the pipeline's lookahead); ``depth=0`` disables
    the worker thread entirely and runs every thunk inline at its
    consumption point, which is the serial execution mode.

    ``stats`` (an :class:`~repro.storage.iostats.IOStats`) receives the
    prefetch observability counters; pass the simulated disk's stats so
    they surface in run results. ``prefetch_hits`` counts results that
    were already decoded when the consumer asked for them — it depends
    on real thread timing and is the only wall-clock-dependent counter
    in :class:`IOStats`.
    """

    def __init__(
        self,
        depth: int,
        stats: Optional[IOStats] = None,
        tracer: "Optional[TracerLike]" = None,
    ) -> None:
        check_nonneg(depth, "depth")
        self.depth = int(depth)
        self._stats_lock = threading.Lock()
        self.stats = stats  # guarded-by: _stats_lock
        #: Observability hook: each task execution (inline or on the
        #: worker thread) is bracketed in a ``prefetch.load`` span.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.cancelled = threading.Event()

    def _bump(self, counter: str, by: int = 1) -> None:
        """Add ``by`` to a stats counter, atomically.

        Worker and consumer threads both record counters; an unlocked
        ``+=`` on the shared :class:`IOStats` is a lost-update race
        (read-modify-write is not atomic across threads).
        """
        with self._stats_lock:
            if self.stats is not None:
                setattr(self.stats, counter, getattr(self.stats, counter) + by)

    # -- gating (ordering dependencies between plan stages) ----------------

    def wait_gate(self, gate: threading.Event) -> None:
        """Block a task until ``gate`` is set, aborting on cancellation.

        FCIU uses this to hold the residency check for column ``j+1``
        until column ``j``'s buffer admissions are complete, keeping the
        pipelined buffer evolution identical to serial execution.
        """
        while not gate.wait(_POLL_S):
            if self.cancelled.is_set():
                raise _Cancelled()

    # -- execution ---------------------------------------------------------

    def run(self, tasks: Sequence[Callable[[], _T]]) -> Iterator[_T]:
        """Yield each task's result, in order.

        The returned iterator owns the worker thread: exhausting it,
        closing it, or abandoning it mid-way always cancels and joins
        the worker (no leaked threads, no deadlocks).
        """
        if self.depth == 0:
            return self._run_inline(tasks)
        return self._run_threaded(tasks)

    def _run_inline(self, tasks: Sequence[Callable[[], _T]]) -> Iterator[_T]:
        for index, task in enumerate(tasks):
            with self.tracer.span("prefetch.load", cat="prefetch", index=index):
                result = task()
            self.tracer.metrics.inc("prefetch.loads")
            yield result

    def _run_threaded(self, tasks: Sequence[Callable[[], _T]]) -> Iterator[_T]:
        q: "queue.Queue" = queue.Queue(maxsize=self.depth)

        def worker() -> None:
            for index, task in enumerate(tasks):
                if self.cancelled.is_set():
                    return
                try:
                    with self.tracer.span(
                        "prefetch.load", cat="prefetch", index=index
                    ):
                        result = task()
                except _Cancelled:
                    return
                except BaseException as exc:  # delivered, not swallowed
                    self._put(q, ("error", exc))
                    return
                self.tracer.metrics.inc("prefetch.loads")
                self._bump("prefetch_issued")
                if not self._put(q, ("ok", result)):
                    # Cancelled with this result undelivered: the work
                    # (and its charged I/O) was speculative lookahead.
                    self._bump("prefetch_wasted")
                    return
            self._put(q, ("done", None))

        thread = threading.Thread(
            target=worker, name="graphsd-prefetch", daemon=True
        )
        thread.start()
        try:
            while True:
                try:
                    kind, payload = q.get_nowait()
                    ready = True
                except queue.Empty:
                    kind, payload = q.get()
                    ready = False
                if kind == "done":
                    return
                if kind == "error":
                    raise payload
                if ready:
                    self._bump("prefetch_hits")
                yield payload
        finally:
            self.cancelled.set()
            while thread.is_alive():
                self._drain(q)
                thread.join(_POLL_S)
            thread.join()
            self._drain(q)  # results queued before the worker exited

    def _drain(self, q: "queue.Queue") -> None:
        """Empty the hand-off queue, counting undelivered results wasted."""
        while True:
            try:
                kind, _payload = q.get_nowait()
            except queue.Empty:
                return
            if kind == "ok":
                self._bump("prefetch_wasted")

    def _put(self, q: "queue.Queue", item: object) -> bool:
        """Queue ``item``, giving up (returning False) on cancellation."""
        while not self.cancelled.is_set():
            try:
                q.put(item, timeout=_POLL_S)
                return True
            except queue.Full:
                continue
        return False

