"""Disk and machine performance models.

The paper's state-aware scheduler (§4.1) predicts per-iteration I/O cost
from four bandwidth classes — sequential/random × read/write — measured
once with ``fio`` on the testbed. We mirror that exactly:

* :class:`DiskProfile` holds the four bandwidths plus a per-request
  latency (seek/dispatch overhead), with HDD/SSD/NVMe presets;
* :class:`SimulatedDisk` charges every transfer to a
  :class:`~repro.utils.timers.SimClock` using the profile and records the
  traffic in :class:`~repro.storage.iostats.IOStats`;
* :class:`MachineProfile` adds modeled compute rates so that the engines'
  update phases also accumulate deterministic time, keeping the
  I/O:compute proportions in the paper's regime (Fig. 6: I/O is 56–91 %
  of execution time).

Because the scheduler and the disk share the same profile object, the
scheduler's cost predictions are *exact* for the traffic it anticipates —
mirroring the paper's claim that the benefit evaluation "provides an
accurate performance prediction" (§4.1, validated in their Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.storage.iostats import IOStats
from repro.utils.timers import IO_READ, IO_WRITE, SimClock
from repro.utils.validation import check_nonneg, check_positive

MiB = float(1 << 20)


@dataclass(frozen=True)
class DiskProfile:
    """Bandwidth/latency model of one storage device.

    Bandwidths are in bytes/second; ``request_latency_s`` is charged once
    per I/O request (a seek on HDDs, command dispatch on flash).
    """

    name: str
    seq_read_bw: float
    seq_write_bw: float
    ran_read_bw: float
    ran_write_bw: float
    request_latency_s: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.seq_read_bw, "seq_read_bw")
        check_positive(self.seq_write_bw, "seq_write_bw")
        check_positive(self.ran_read_bw, "ran_read_bw")
        check_positive(self.ran_write_bw, "ran_write_bw")
        check_nonneg(self.request_latency_s, "request_latency_s")

    # Cost helpers shared verbatim by SimulatedDisk (actual charging) and
    # the state-aware scheduler (prediction), so predictions are exact.

    def seq_read_time(self, nbytes: int, requests: int = 1) -> float:
        return nbytes / self.seq_read_bw + requests * self.request_latency_s

    def seq_write_time(self, nbytes: int, requests: int = 1) -> float:
        return nbytes / self.seq_write_bw + requests * self.request_latency_s

    def ran_read_time(self, nbytes: int, requests: int = 1) -> float:
        return nbytes / self.ran_read_bw + requests * self.request_latency_s

    def ran_write_time(self, nbytes: int, requests: int = 1) -> float:
        return nbytes / self.ran_write_bw + requests * self.request_latency_s

    def scaled(self, factor: float) -> "DiskProfile":
        """A profile with all bandwidths multiplied by ``factor``."""
        check_positive(factor, "factor")
        return replace(
            self,
            name=f"{self.name}x{factor:g}",
            seq_read_bw=self.seq_read_bw * factor,
            seq_write_bw=self.seq_write_bw * factor,
            ran_read_bw=self.ran_read_bw * factor,
            ran_write_bw=self.ran_write_bw * factor,
        )


#: A 7200 rpm SATA HDD in the class of the paper's testbed (two 500 GB
#: drives). Following the paper's cost model (§4.1), seek cost is folded
#: into the *effective random bandwidth* ``B_rr``/``B_rw`` rather than
#: charged per request: the model is pure bandwidth-class accounting,
#: which keeps the full/on-demand crossover at the same *fraction of the
#: graph* regardless of absolute scale — essential for scaled-down
#: proxies to reproduce the paper's scheduling behaviour. Per-request
#: latency therefore defaults to zero in every preset; it remains a
#: profile parameter for sensitivity studies.
HDD_PROFILE = DiskProfile(
    name="hdd",
    seq_read_bw=150 * MiB,
    seq_write_bw=120 * MiB,
    ran_read_bw=12 * MiB,
    ran_write_bw=8 * MiB,
)

#: SATA SSD: random access is cheap but still below sequential.
SSD_PROFILE = DiskProfile(
    name="ssd",
    seq_read_bw=520 * MiB,
    seq_write_bw=450 * MiB,
    ran_read_bw=300 * MiB,
    ran_write_bw=250 * MiB,
)

#: NVMe flash: the sequential/random gap nearly closes.
NVME_PROFILE = DiskProfile(
    name="nvme",
    seq_read_bw=3200 * MiB,
    seq_write_bw=2800 * MiB,
    ran_read_bw=2400 * MiB,
    ran_write_bw=2000 * MiB,
)

PROFILES = {p.name: p for p in (HDD_PROFILE, SSD_PROFILE, NVME_PROFILE)}


@dataclass(frozen=True)
class MachineProfile:
    """Full machine model: disk + modeled compute throughput.

    ``edge_update_rate`` is edge updates per second across all execution
    threads (the paper uses 16); ``vertex_scan_rate`` covers per-vertex
    work such as apply steps and frontier scans; ``sched_eval_rate`` is
    the rate of the O(|A|) benefit-evaluation pass of §4.1 (charged to
    the ``scheduling`` component, measured in Fig. 11).
    """

    disk: DiskProfile = HDD_PROFILE
    edge_update_rate: float = 100e6
    vertex_scan_rate: float = 400e6
    sched_eval_rate: float = 120e6

    def __post_init__(self) -> None:
        check_positive(self.edge_update_rate, "edge_update_rate")
        check_positive(self.vertex_scan_rate, "vertex_scan_rate")
        check_positive(self.sched_eval_rate, "sched_eval_rate")

    def edge_compute_time(self, num_edges: int) -> float:
        return num_edges / self.edge_update_rate

    def vertex_compute_time(self, num_vertices: int) -> float:
        return num_vertices / self.vertex_scan_rate

    def sched_eval_time(self, num_ops: int) -> float:
        return num_ops / self.sched_eval_rate

    def with_disk(self, disk: DiskProfile) -> "MachineProfile":
        return replace(self, disk=disk)


DEFAULT_MACHINE = MachineProfile()


class SimulatedDisk:
    """Charges real data movement to a modeled disk.

    The engines perform genuine file reads/writes through
    :mod:`repro.storage.blockfile`; each call lands here, increments the
    :class:`IOStats` counters, and advances the shared
    :class:`~repro.utils.timers.SimClock` by the modeled transfer time.
    """

    def __init__(
        self,
        profile: DiskProfile = HDD_PROFILE,
        clock: Optional[SimClock] = None,
        injector: Optional[object] = None,
    ) -> None:
        self.profile = profile
        self.clock = clock if clock is not None else SimClock()
        self.stats = IOStats()
        #: Optional :class:`~repro.storage.faults.FaultInjector`; every
        #: ArrayFile operation and engine crash point polls it when set.
        self.injector = injector
        #: Optional observability registry (attached by a traced engine
        #: run, detached when the run ends): every charge reports its
        #: transfer size into per-access-class histograms.
        self.metrics: Optional[MetricsRegistry] = None

    # -- reads -------------------------------------------------------------

    def charge_read_sequential(self, nbytes: int, requests: int = 1) -> None:
        check_nonneg(nbytes, "nbytes")
        check_nonneg(requests, "requests")
        self.stats.bytes_read_seq += nbytes
        self.stats.read_requests_seq += requests
        self.clock.charge(IO_READ, self.profile.seq_read_time(nbytes, requests))
        if self.metrics is not None:
            self.metrics.observe("disk.read_seq_bytes", nbytes)

    def charge_read_random(self, nbytes: int, requests: int = 1) -> None:
        check_nonneg(nbytes, "nbytes")
        check_nonneg(requests, "requests")
        self.stats.bytes_read_ran += nbytes
        self.stats.read_requests_ran += requests
        self.clock.charge(IO_READ, self.profile.ran_read_time(nbytes, requests))
        if self.metrics is not None:
            self.metrics.observe("disk.read_ran_bytes", nbytes)

    # -- writes ------------------------------------------------------------

    def charge_write_sequential(self, nbytes: int, requests: int = 1) -> None:
        check_nonneg(nbytes, "nbytes")
        check_nonneg(requests, "requests")
        self.stats.bytes_written_seq += nbytes
        self.stats.write_requests_seq += requests
        self.clock.charge(IO_WRITE, self.profile.seq_write_time(nbytes, requests))
        if self.metrics is not None:
            self.metrics.observe("disk.write_seq_bytes", nbytes)

    def charge_write_random(self, nbytes: int, requests: int = 1) -> None:
        check_nonneg(nbytes, "nbytes")
        check_nonneg(requests, "requests")
        self.stats.bytes_written_ran += nbytes
        self.stats.write_requests_ran += requests
        self.clock.charge(IO_WRITE, self.profile.ran_write_time(nbytes, requests))
        if self.metrics is not None:
            self.metrics.observe("disk.write_ran_bytes", nbytes)

    # -- cache accounting (used by the sub-block buffer, §4.3) --------------

    def record_cache_hit(self, nbytes: int) -> None:
        self.stats.cache_hits += 1
        self.stats.bytes_served_from_cache += nbytes

    def record_cache_miss(self) -> None:
        self.stats.cache_misses += 1

    # -- fault recovery ------------------------------------------------------

    def charge_retry_backoff(self, seconds: float, write: bool = False) -> None:
        """Charge the modeled wait before re-issuing a faulted request."""
        check_nonneg(seconds, "seconds")
        self.clock.charge(IO_WRITE if write else IO_READ, seconds)

    def reset(self) -> None:
        """Clear counters and clock (the profile is retained)."""
        self.stats.reset()
        self.clock.reset()
