"""Bounded K-lane pool for SCIU's selective gathers (modeled parallelism).

SCIU's scatter phase issues many *independent* random reads — one merged
run set per active ``(i, j)`` block. The serial pipeline hides them
behind compute one at a time; a real system would keep several in flight
at once (DFOGraph's request-overlap observation). This pool models that:
the plan's load thunks are spread over ``lanes`` concurrent disk lanes
and the simulated time hidden by lane concurrency is credited back to
the dual-timeline clock.

Execution itself stays **serial and in plan order** — the pool delegates
to a single-worker :class:`~repro.storage.prefetch.BlockPrefetcher`, so
the disk-operation stream (charges, page-cache state, injected faults,
:class:`~repro.storage.faults.SimulatedCrash` delivery) is exactly the
serial stream and every existing fault/crash test stays bit-identical.
Only *accounting* is parallel:

* each thunk is instrumented at the worker so its own DISK charge and
  read-request count travel with the result (valid for the same reason
  :meth:`~repro.utils.timers.OverlapRegion.measure_fill` is: the single
  in-order worker is the only thread charging DISK during a scatter);
* at each **consumption point** the task is assigned to the currently
  least-busy lane (greedy argmin, ties to the lowest index) and the
  lane/queue counters are bumped. Consumption-point accounting makes the
  counters a pure function of the consumed plan prefix — deterministic
  even when speculative lookahead is abandoned by a crash;
* :meth:`finish` computes the round's lane saving
  ``sum(lane_busy) - max(lane_busy)`` and credits it to the open
  :class:`~repro.utils.timers.OverlapRegion` (pipelined runs) or
  directly to :meth:`~repro.utils.timers.SimClock.add_overlap_saving`
  (serial runs). Faulted/crashed rounds never reach ``finish`` and get
  no credit. With ``lanes=1`` the saving is identically zero, so K=1 is
  bit-identical to the pre-pool serial gather.
"""

from __future__ import annotations

import threading
from typing import (
    TYPE_CHECKING,
    Callable,
    Generator,
    Generic,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.obs.trace import NULL_TRACER
from repro.storage.iostats import IOStats
from repro.storage.prefetch import BlockPrefetcher
from repro.utils.timers import DISK, OverlapRegion, SimClock
from repro.utils.validation import check_positive

if TYPE_CHECKING:
    from repro.obs import TracerLike

_T = TypeVar("_T")


class _Instrumented(Generic[_T]):
    """Wrap one load thunk so its I/O footprint travels with its result."""

    __slots__ = ("_task", "_clock", "_stats")

    def __init__(
        self, task: Callable[[], _T], clock: SimClock, stats: Optional[IOStats]
    ) -> None:
        self._task = task
        self._clock = clock
        self._stats = stats

    def _read_requests(self) -> int:
        stats = self._stats
        if stats is None:
            return 0
        return stats.read_requests_seq + stats.read_requests_ran

    def __call__(self) -> "Tuple[_T, float, int]":
        disk0 = self._clock.resource_elapsed(DISK)
        reqs0 = self._read_requests()
        result = self._task()
        disk1 = self._clock.resource_elapsed(DISK)
        reqs1 = self._read_requests()
        return (result, disk1 - disk0, reqs1 - reqs0)


class GatherPool:
    """Run a round's gather thunks with K-lane modeled disk concurrency.

    ``lanes`` is the modeled concurrency (K >= 1); ``depth`` is the
    lookahead of the underlying prefetcher (0 = inline/serial execution,
    as in :meth:`~repro.core.engine.GraphSDEngine.make_prefetcher`).
    ``stats`` receives the ``gather_*`` observability counters — pass
    the simulated disk's :class:`IOStats` so they surface in results.
    """

    def __init__(
        self,
        lanes: int,
        depth: int,
        clock: SimClock,
        stats: Optional[IOStats] = None,
        tracer: "Optional[TracerLike]" = None,
    ) -> None:
        check_positive(lanes, "lanes")
        self.lanes = int(lanes)
        self.clock = clock
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._prefetcher = BlockPrefetcher(depth, stats=stats, tracer=self.tracer)
        self._lock = threading.Lock()
        # The stats object is shared with the prefetcher (which guards its
        # own bumps); the gather_* fields are written only at consumption
        # points on the consuming thread, under _lock for the read-modify-
        # write against concurrent snapshot readers.
        self._stats = stats
        self._lane_busy: List[float] = [0.0] * self.lanes  # guarded-by: _lock
        self._lane_depth: List[int] = [0] * self.lanes  # guarded-by: _lock
        self._finished = False

    # -- consumption-point accounting ---------------------------------------

    def _account(self, disk_seconds: float, runs: int) -> int:
        """Assign one consumed task to the least-busy lane; bump counters."""
        with self._lock:
            lane = 0
            for k in range(1, self.lanes):
                if self._lane_busy[k] < self._lane_busy[lane]:
                    lane = k
            self._lane_busy[lane] += disk_seconds
            self._lane_depth[lane] += 1
            depth = self._lane_depth[lane]
            if self._stats is not None:
                self._stats.gather_runs_issued += runs
                self._stats.gather_lane_busy_seconds += disk_seconds
                if depth > self._stats.gather_queue_peak:
                    self._stats.gather_queue_peak = depth
        self.tracer.metrics.inc("gather.runs", runs)
        self.tracer.metrics.observe("gather.queue_depth", depth)
        return lane

    # -- execution ----------------------------------------------------------

    def run(self, tasks: Sequence[Callable[[], _T]]) -> "Generator[_T, None, None]":
        """Yield each task's result in plan order, accounting lanes.

        The returned generator owns the inner prefetcher's worker:
        closing or abandoning it cancels and joins exactly like
        :meth:`BlockPrefetcher.run`.
        """
        wrapped = [_Instrumented(task, self.clock, self._stats) for task in tasks]
        stream = self._prefetcher.run(wrapped)

        def consume() -> "Generator[_T, None, None]":
            try:
                for result, disk_seconds, runs in stream:
                    lane = self._account(disk_seconds, runs)
                    with self.tracer.span(
                        "gather.run",
                        cat="gather",
                        lane=lane,
                        runs=runs,
                        disk_seconds=disk_seconds,
                    ):
                        pass
                    yield result
            finally:
                stream.close()

        return consume()

    # -- round close --------------------------------------------------------

    @property
    def lane_busy_seconds(self) -> "List[float]":
        """Per-lane modeled busy time accumulated so far (a copy)."""
        with self._lock:
            return list(self._lane_busy)

    @property
    def saved_seconds(self) -> float:
        """DISK time hidden by lane concurrency: ``sum(busy) - max(busy)``."""
        with self._lock:
            if self.lanes <= 1:
                return 0.0
            return sum(self._lane_busy) - max(self._lane_busy)

    def finish(self, region: Optional[OverlapRegion] = None) -> float:
        """Credit the round's lane saving to the clock; returns the saving.

        Call once, after the consume loop completed *without* a fault or
        crash — aborted rounds keep their raw serial charges. With an
        open ``region`` the credit shortens the region's effective DISK
        timeline (composing with I/O–compute overlap without double
        counting: ``serial_seconds`` stays raw); without one it is folded
        straight into the clock's ``overlap_saved``.
        """
        with self._lock:
            if self._finished:
                raise RuntimeError("GatherPool.finish() called twice")
            self._finished = True
        saved = self.saved_seconds
        if saved > 0.0:
            if region is not None:
                region.add_disk_credit(saved)
            else:
                self.clock.add_overlap_saving(saved)
        return saved
