"""Storage substrate: real files, modeled disk timing.

The paper's testbed is two 500 GB HDDs with the page cache disabled and
direct I/O. This subpackage reproduces the *behaviourally relevant* part
of that setup in a sandbox:

* graph data really lives in binary files on disk and is really read back
  (:mod:`repro.storage.blockfile`),
* every access is charged to a :class:`~repro.storage.disk.SimulatedDisk`
  which classifies it as sequential or random and converts bytes moved
  into deterministic, modeled disk seconds using the same four bandwidth
  classes the paper's cost model uses (``B_sr``, ``B_sw``, ``B_rr``,
  ``B_rw`` — Table 2),
* :class:`~repro.storage.iostats.IOStats` keeps the raw byte/request
  counters behind the paper's I/O-traffic figures (Fig. 7, Fig. 9b).
"""

from repro.storage.disk import (
    DiskProfile,
    MachineProfile,
    SimulatedDisk,
    HDD_PROFILE,
    SSD_PROFILE,
    NVME_PROFILE,
    DEFAULT_MACHINE,
)
from repro.storage.faults import (
    ChecksumError,
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    GatherFault,
    SimulatedCrash,
    TransientIOError,
    flip_bit,
)
from repro.storage.gatherpool import GatherPool
from repro.storage.iostats import IOStats
from repro.storage.pagecache import PageCache, PageCacheStats
from repro.storage.prefetch import BlockPrefetcher
from repro.storage.blockfile import ArrayFile, Device

__all__ = [
    "ChecksumError",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "GatherFault",
    "SimulatedCrash",
    "TransientIOError",
    "flip_bit",
    "DiskProfile",
    "MachineProfile",
    "SimulatedDisk",
    "HDD_PROFILE",
    "SSD_PROFILE",
    "NVME_PROFILE",
    "DEFAULT_MACHINE",
    "GatherPool",
    "IOStats",
    "PageCache",
    "BlockPrefetcher",
    "PageCacheStats",
    "ArrayFile",
    "Device",
]
