"""Simulated OS page cache.

The paper evaluates with the page cache disabled and direct I/O "for
fair comparison and evaluation of the I/O optimizations" (§5.1). This
module makes that methodological choice *testable*: an LRU page cache
can be attached to a :class:`~repro.storage.blockfile.Device`, after
which every file access is filtered through 4 KiB-page hit/miss logic —
only missed pages are charged to the simulated disk, and small reads
pay page-granularity amplification exactly like ``read(2)`` through the
kernel cache.

The accompanying ablation benchmark shows what the paper implies: with
a warm page cache holding a large share of the graph, the I/O-policy
differences between engines compress toward their compute costs, which
is why measuring I/O optimizations requires direct I/O.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Tuple

from repro.utils.validation import check_positive, check_nonneg

DEFAULT_PAGE_BYTES = 4096

PageKey = Tuple[Hashable, int]


@dataclass
class PageCacheStats:
    """Hit/miss accounting of one simulated page cache."""

    page_hits: int = 0
    page_misses: int = 0
    evictions: int = 0
    bytes_requested: int = 0
    bytes_missed: int = 0
    pages_invalidated: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.page_hits + self.page_misses
        return self.page_hits / total if total else 0.0


class PageCache:
    """LRU cache of (file, page-index) entries with a byte budget."""

    def __init__(
        self, capacity_bytes: int, page_bytes: int = DEFAULT_PAGE_BYTES
    ) -> None:
        check_nonneg(capacity_bytes, "capacity_bytes")
        check_positive(page_bytes, "page_bytes")
        self.page_bytes = int(page_bytes)
        self.capacity_pages = int(capacity_bytes) // self.page_bytes
        self._pages: "OrderedDict[PageKey, None]" = OrderedDict()
        self.stats = PageCacheStats()

    # -- core ------------------------------------------------------------

    def _page_range(self, offset: int, nbytes: int) -> range:
        if nbytes <= 0:
            return range(0)
        first = offset // self.page_bytes
        last = (offset + nbytes - 1) // self.page_bytes
        return range(first, last + 1)

    def _touch(self, key: PageKey) -> bool:
        """Mark a page accessed; returns True on hit."""
        if self.capacity_pages == 0:
            return False
        if key in self._pages:
            self._pages.move_to_end(key)
            return True
        self._pages[key] = None
        if len(self._pages) > self.capacity_pages:
            self._pages.popitem(last=False)
            self.stats.evictions += 1
        return False

    def access(self, file_key: Hashable, offset: int, nbytes: int) -> int:
        """Register a read; returns the bytes that must come from disk.

        Missed pages are charged at full page granularity (kernel-style
        read amplification); hit pages cost nothing. The miss charge is
        never less than the page size per missed page, but is capped at
        page-aligned coverage of the request.
        """
        check_nonneg(offset, "offset")
        check_nonneg(nbytes, "nbytes")
        self.stats.bytes_requested += nbytes
        missed_pages = 0
        for page in self._page_range(offset, nbytes):
            if self._touch((file_key, page)):
                self.stats.page_hits += 1
            else:
                self.stats.page_misses += 1
                missed_pages += 1
        missed_bytes = missed_pages * self.page_bytes
        self.stats.bytes_missed += missed_bytes
        return missed_bytes

    def write(self, file_key: Hashable, offset: int, nbytes: int) -> None:
        """Register a write-through write (write-allocate: pages populate)."""
        for page in self._page_range(offset, nbytes):
            self._touch((file_key, page))

    def invalidate_file(self, file_key: Hashable) -> int:
        """Drop every cached page of one file; returns pages dropped."""
        victims = [k for k in self._pages if k[0] == file_key]
        for k in victims:
            del self._pages[k]
        self.stats.pages_invalidated += len(victims)
        return len(victims)

    def clear(self) -> None:
        self._pages.clear()

    @property
    def resident_pages(self) -> int:
        return len(self._pages)

    @property
    def resident_bytes(self) -> int:
        return len(self._pages) * self.page_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PageCache({self.resident_pages}/{self.capacity_pages} pages, "
            f"hit rate {self.stats.hit_rate:.2f})"
        )
