"""File-backed typed arrays with modeled I/O charging.

Graph partitions live on disk as *column files*: one flat binary file per
edge attribute (sources, destinations, weights) plus index files. Every
read and write goes through :class:`ArrayFile`, which performs the real
file operation **and** charges the byte movement to the owning
:class:`~repro.storage.disk.SimulatedDisk`.

Design notes
------------
* Files hold a single fixed dtype; offsets are expressed in items, not
  bytes, so callers never do size arithmetic.
* Scattered reads (:meth:`ArrayFile.read_gather`) are the on-demand I/O
  model's workhorse: given per-run (start, count) pairs they gather all
  runs with one vectorized memmap fancy-index — real page reads, no
  Python-level per-run loop — and charge each run as one request,
  split into sequential/random classes by the caller-provided mask
  (the scheduler's ``S_seq``/``S_ran`` split, §4.1 of the paper).

Robustness (see ``docs/ROBUSTNESS.md``)
---------------------------------------
* With ``checksums=True`` every file keeps a JSON sidecar
  (``<name>.crc``) of per-64 KiB-chunk CRC32s, maintained on every
  write and verified on every read path; a mismatch (bit rot, torn
  write) raises :class:`~repro.storage.faults.ChecksumError` rather than
  returning silently wrong data. Verification is modeled as inline with
  the transfer, so it adds no charged traffic.
* When a :class:`~repro.storage.faults.FaultInjector` is attached to the
  disk, every operation polls it. Transient faults are absorbed by a
  bounded retry loop with exponential backoff (charged to the simulated
  clock, counted in ``IOStats.read_retries``/``write_retries``); torn
  writes persist a prefix of the payload and die with
  :class:`~repro.storage.faults.SimulatedCrash`.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

import numpy as np

from repro.storage.disk import SimulatedDisk
from repro.storage.faults import ChecksumError, SimulatedCrash, TransientIOError
from repro.storage.pagecache import PageCache
from repro.utils.validation import require

PathLike = Union[str, os.PathLike]

#: Byte-stream dtype for files with no global record size (the compact
#: grid encoding packs variable-width records per sub-block). Opening an
#: :class:`ArrayFile` with this dtype makes item offsets *byte* offsets,
#: so every existing facility — CRC sidecar chunking, fault injection,
#: torn-write prefixes, page-cache accounting, gather charging — works
#: on arbitrary byte ranges without knowing any record structure.
BYTE_DTYPE = np.dtype(np.uint8)

#: Granularity of the CRC32 sidecar: one checksum per 64 KiB chunk, so
#: slice/gather reads verify only the chunks they touch.
CRC_CHUNK_BYTES = 1 << 16
CRC_SUFFIX = ".crc"

#: Transient faults absorbed per operation before giving up.
MAX_IO_RETRIES = 4
#: Backoff before retry k is ``BASE * 2**(k-1)`` modeled seconds.
RETRY_BACKOFF_BASE_S = 1e-3


class ArrayFile:
    """A flat binary file of items with one fixed dtype.

    Instances are lightweight handles; the item count is tracked in
    memory and verified against the on-disk size.
    """

    def __init__(
        self,
        path: PathLike,
        dtype: np.dtype,
        disk: SimulatedDisk,
        cache: Optional[PageCache] = None,
        checksums: bool = False,
    ) -> None:
        self.path = Path(path)
        self.dtype = np.dtype(dtype)
        self.disk = disk
        self.cache = cache
        self.checksums = checksums
        self._itemsize = self.dtype.itemsize
        self._mmap: Optional[np.memmap] = None
        self._crc_table: Optional[dict] = None
        self._crc_loaded = False

    # -- charging through the (optional) simulated page cache ---------------

    def _charge_read(
        self, offset_bytes: int, nbytes: int, sequential: bool, requests: int = 1
    ) -> None:
        if self.cache is not None:
            nbytes = self.cache.access(self.path.name, offset_bytes, nbytes)
            if nbytes == 0:
                return  # fully cache-resident: no disk request at all
        if sequential:
            self.disk.charge_read_sequential(nbytes, requests=requests)
        else:
            self.disk.charge_read_random(nbytes, requests=requests)

    def _charge_write(
        self, offset_bytes: int, nbytes: int, sequential: bool, requests: int = 1
    ) -> None:
        if self.cache is not None:
            # write-through with write-allocate: disk is charged fully,
            # but the written pages become cache-resident.
            self.cache.write(self.path.name, offset_bytes, nbytes)
        if sequential:
            self.disk.charge_write_sequential(nbytes, requests=requests)
        else:
            self.disk.charge_write_random(nbytes, requests=requests)

    # -- fault injection hooks ----------------------------------------------

    def _maybe_fault(self, write: bool) -> None:
        """Poll the injector; absorb transient faults with bounded retry.

        Each absorbed fault charges exponential backoff to the simulated
        clock and a retry to :class:`IOStats`; exhausting the budget
        re-raises as an unrecoverable :class:`TransientIOError`.
        """
        inj = self.disk.injector
        if inj is None:
            return
        poll = inj.fault_write if write else inj.fault_read
        attempt = 0
        while poll(self.path.name):
            self.disk.stats.faults_injected += 1
            if attempt >= MAX_IO_RETRIES:
                kind = "write" if write else "read"
                raise TransientIOError(
                    f"transient {kind} fault on {self.path.name} persisted "
                    f"after {attempt} retries"
                )
            attempt += 1
            if write:
                self.disk.stats.write_retries += 1
            else:
                self.disk.stats.read_retries += 1
            self.disk.charge_retry_backoff(
                RETRY_BACKOFF_BASE_S * (2 ** (attempt - 1)), write=write
            )

    def _maybe_torn_write(self, data: np.ndarray, offset_bytes: int, mode: str) -> None:
        """If the injector schedules a torn write here, persist a prefix
        of ``data`` exactly as a power loss mid-``write(2)`` would, then
        die with :class:`SimulatedCrash`. The checksum sidecar is *not*
        updated — the next read detects the tear."""
        inj = self.disk.injector
        if inj is None:
            return
        fraction = inj.torn_write(self.path.name)
        if fraction is None:
            return
        payload = data.tobytes()
        torn = payload[: int(len(payload) * fraction)]
        if mode == "append":
            with open(self.path, "ab") as f:
                f.write(torn)
        elif mode == "replace":
            with open(self.path, "wb") as f:
                f.write(torn)
        else:  # in-place slice overwrite
            with open(self.path, "r+b") as f:
                f.seek(offset_bytes)
                f.write(torn)
        self.disk.stats.faults_injected += 1
        self._charge_write(offset_bytes, len(torn), sequential=(mode != "slice"))
        raise SimulatedCrash(f"torn write to {self.path.name}")

    # -- checksum sidecar ----------------------------------------------------

    @property
    def _crc_path(self) -> Path:
        return self.path.with_name(self.path.name + CRC_SUFFIX)

    def _crc_load(self) -> Optional[dict]:
        """The sidecar table, or None when the file has none (unverified)."""
        if not self._crc_loaded:
            self._crc_loaded = True
            if self._crc_path.exists():
                try:
                    table = json.loads(self._crc_path.read_text())
                    require(
                        isinstance(table.get("chunks"), list)
                        and "nbytes" in table
                        and "chunk_bytes" in table,
                        "malformed table",
                    )
                    self._crc_table = table
                except (ValueError, OSError) as exc:
                    raise ChecksumError(
                        f"unreadable checksum sidecar for {self.path.name}: {exc}"
                    ) from exc
        return self._crc_table

    def _crc_update_range(self, offset_bytes: int, nbytes: int) -> None:
        """Recompute the CRC chunks covering ``[offset, offset+nbytes)``
        from the file (plus any chunks a size change added or removed)."""
        if not self.checksums:
            return
        table = self._crc_load()
        if table is None:
            # First checksummed write to this file: cover it entirely so
            # pre-existing chunks are never left unverifiable.
            table = {"chunk_bytes": CRC_CHUNK_BYTES, "nbytes": 0, "chunks": []}
            offset_bytes, nbytes = 0, self.nbytes
        chunk_bytes = int(table["chunk_bytes"])
        size = self.nbytes
        total_chunks = (size + chunk_bytes - 1) // chunk_bytes
        chunks: List[int] = list(table["chunks"])[:total_chunks]
        chunks.extend(0 for _ in range(total_chunks - len(chunks)))
        first = offset_bytes // chunk_bytes
        last_excl = total_chunks
        if int(table["nbytes"]) == size and nbytes > 0:
            # Size unchanged (in-place overwrite): only touched chunks.
            last_excl = min(total_chunks, (offset_bytes + nbytes - 1) // chunk_bytes + 1)
        if size:
            with open(self.path, "rb") as f:
                for k in range(first, last_excl):
                    f.seek(k * chunk_bytes)
                    chunks[k] = zlib.crc32(f.read(chunk_bytes))
        table.update(nbytes=size, chunks=chunks)
        self._crc_table = table
        self._crc_path.write_text(json.dumps(table))

    def _verify_chunks(self, chunk_indices: "Iterable[int]") -> None:
        table = self._crc_load()
        if table is None:
            return
        size = self.nbytes
        if int(table["nbytes"]) != size:
            raise ChecksumError(
                f"{self.path.name}: on-disk size {size} does not match the "
                f"recorded {table['nbytes']} bytes (torn or lost write)"
            )
        chunk_bytes = int(table["chunk_bytes"])
        chunks = table["chunks"]
        with open(self.path, "rb") as f:
            for k in sorted(set(int(k) for k in chunk_indices)):
                f.seek(k * chunk_bytes)
                if zlib.crc32(f.read(chunk_bytes)) != chunks[k]:
                    raise ChecksumError(
                        f"{self.path.name}: CRC32 mismatch in chunk {k} "
                        f"(bytes {k * chunk_bytes}..{min(size, (k + 1) * chunk_bytes)})"
                    )

    def _verify_range(self, offset_bytes: int, nbytes: int) -> None:
        """Verify the CRC chunks covering one contiguous read."""
        if not self.checksums or nbytes <= 0:
            return
        table = self._crc_load()
        if table is None:
            return
        chunk_bytes = int(table["chunk_bytes"])
        first = offset_bytes // chunk_bytes
        last = (offset_bytes + nbytes - 1) // chunk_bytes
        self._verify_chunks(range(first, last + 1))

    # -- metadata ------------------------------------------------------

    @property
    def exists(self) -> bool:
        return self.path.exists()

    @property
    def nbytes(self) -> int:
        return self.path.stat().st_size if self.exists else 0

    @property
    def item_count(self) -> int:
        nbytes = self.nbytes
        require(
            nbytes % self._itemsize == 0,
            f"{self.path} size {nbytes} is not a multiple of itemsize {self._itemsize}",
        )
        return nbytes // self._itemsize

    # -- writes ----------------------------------------------------------

    def write(self, array: np.ndarray) -> None:
        """Replace the file contents with ``array`` (sequential write)."""
        data = np.ascontiguousarray(array, dtype=self.dtype)
        self._invalidate_mmap()
        if self.cache is not None:
            self.cache.invalidate_file(self.path.name)  # contents replaced
        self._maybe_fault(write=True)
        self._maybe_torn_write(data, 0, mode="replace")
        data.tofile(self.path)
        self._charge_write(0, data.nbytes, sequential=True)
        self._crc_update_range(0, data.nbytes)

    def append(self, array: np.ndarray) -> None:
        """Append ``array`` at the end of the file (sequential write)."""
        data = np.ascontiguousarray(array, dtype=self.dtype)
        self._invalidate_mmap()
        offset = self.nbytes
        self._maybe_fault(write=True)
        self._maybe_torn_write(data, offset, mode="append")
        with open(self.path, "ab") as f:
            data.tofile(f)
        self._charge_write(offset, data.nbytes, sequential=True)
        self._crc_update_range(offset, data.nbytes)

    def overwrite_slice(self, start_item: int, array: np.ndarray, random: bool = True) -> None:
        """Overwrite ``len(array)`` items starting at ``start_item``.

        Used for in-place vertex value writeback; charged as a random
        write unless ``random=False``.
        """
        data = np.ascontiguousarray(array, dtype=self.dtype)
        require(start_item >= 0, "start_item must be >= 0")
        require(
            start_item + len(data) <= self.item_count,
            "overwrite_slice beyond end of file",
        )
        self._invalidate_mmap()
        offset = start_item * self._itemsize
        self._maybe_fault(write=True)
        self._maybe_torn_write(data, offset, mode="slice")
        with open(self.path, "r+b") as f:
            f.seek(offset)
            data.tofile(f)
        self._charge_write(offset, data.nbytes, sequential=not random)
        self._crc_update_range(offset, data.nbytes)

    # -- reads -----------------------------------------------------------

    def read_all(self) -> np.ndarray:
        """Read the entire file as one sequential scan."""
        self._maybe_fault(write=False)
        self._verify_range(0, self.nbytes)
        data = np.fromfile(self.path, dtype=self.dtype)
        self._charge_read(0, data.nbytes, sequential=True)
        return data

    def read_slice(self, start_item: int, count: int, sequential: bool = True) -> np.ndarray:
        """Read ``count`` items starting at ``start_item``."""
        require(start_item >= 0 and count >= 0, "negative offset or count")
        if count == 0:
            return np.empty(0, dtype=self.dtype)
        require(start_item + count <= self.item_count, "read_slice beyond end of file")
        self._maybe_fault(write=False)
        self._verify_range(start_item * self._itemsize, count * self._itemsize)
        data = np.fromfile(
            self.path, dtype=self.dtype, count=count, offset=start_item * self._itemsize
        )
        self._charge_read(start_item * self._itemsize, data.nbytes, sequential)
        return data

    def read_gather(
        self,
        starts: np.ndarray,
        counts: np.ndarray,
        seq_run_mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Gather multiple (start, count) runs into one concatenated array.

        ``seq_run_mask[k]`` selects whether run ``k`` is charged at
        sequential or random bandwidth; by default every run is random.
        Runs are charged one request each. Returns the runs concatenated
        in argument order.
        """
        starts = np.asarray(starts, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        require(starts.shape == counts.shape, "starts/counts shape mismatch")
        if starts.size == 0:
            return np.empty(0, dtype=self.dtype)
        require(counts.min() >= 0 and starts.min() >= 0, "negative start or count")
        total_items = self.item_count
        require(int((starts + counts).max()) <= total_items, "gather run beyond end of file")

        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=self.dtype)

        self._maybe_fault(write=False)
        if self.checksums and self._crc_load() is not None:
            chunk_bytes = int(self._crc_table["chunk_bytes"])
            touched = set()
            for k in np.flatnonzero(counts > 0):
                lo = int(starts[k]) * self._itemsize
                hi = lo + int(counts[k]) * self._itemsize - 1
                touched.update(range(lo // chunk_bytes, hi // chunk_bytes + 1))
            self._verify_chunks(touched)

        # Vectorized multi-run gather: positions[r] enumerates each run's
        # item indices back to back, then one fancy-index on the memmap.
        cum = np.concatenate(([0], np.cumsum(counts)[:-1]))
        positions = (
            np.arange(total, dtype=np.int64)
            - np.repeat(cum, counts)
            + np.repeat(starts, counts)
        )
        data = np.asarray(self._get_mmap()[positions])

        nonempty = counts > 0
        if seq_run_mask is None:
            seq_run_mask = np.zeros_like(nonempty)
        else:
            seq_run_mask = np.asarray(seq_run_mask, dtype=bool)
            require(seq_run_mask.shape == starts.shape, "seq_run_mask shape mismatch")
        if self.cache is not None:
            # Per-run cache filtering (runs are few after merging).
            for k in np.flatnonzero(nonempty):
                self._charge_read(
                    int(starts[k]) * self._itemsize,
                    int(counts[k]) * self._itemsize,
                    sequential=bool(seq_run_mask[k]),
                )
            return data
        seq_runs = nonempty & seq_run_mask
        ran_runs = nonempty & ~seq_run_mask
        seq_bytes = int(counts[seq_runs].sum()) * self._itemsize
        ran_bytes = int(counts[ran_runs].sum()) * self._itemsize
        if seq_bytes or int(seq_runs.sum()):
            self.disk.charge_read_sequential(seq_bytes, requests=int(seq_runs.sum()))
        if ran_bytes or int(ran_runs.sum()):
            self.disk.charge_read_random(ran_bytes, requests=int(ran_runs.sum()))
        return data

    # -- lifecycle ---------------------------------------------------------

    def delete(self) -> None:
        self._invalidate_mmap()
        if self.cache is not None:
            # A later file of the same name must not inherit these pages.
            self.cache.invalidate_file(self.path.name)
        if self.exists:
            self.path.unlink()
        if self._crc_path.exists():
            self._crc_path.unlink()
        self._crc_table = None
        self._crc_loaded = False

    def _get_mmap(self) -> np.memmap:
        if self._mmap is None or self._mmap.shape[0] != self.item_count:
            self._mmap = np.memmap(self.path, dtype=self.dtype, mode="r")
        return self._mmap

    def _invalidate_mmap(self) -> None:
        self._mmap = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArrayFile({self.path.name}, dtype={self.dtype}, items={self.item_count if self.exists else 0})"


class Device:
    """A directory of :class:`ArrayFile` objects on one simulated disk.

    Acts as the 'volume' a graph's on-disk representation lives on; all
    files created through one device share its :class:`SimulatedDisk`
    accounting. With ``checksums=True`` every file maintains a CRC32
    sidecar verified on read (see module docstring).
    """

    def __init__(
        self,
        root: PathLike,
        disk: Optional[SimulatedDisk] = None,
        page_cache: Optional[PageCache] = None,
        checksums: bool = False,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.disk = disk if disk is not None else SimulatedDisk()
        self.page_cache = page_cache
        self.checksums = checksums
        self._files: Dict[str, ArrayFile] = {}

    def array_file(self, name: str, dtype: np.dtype) -> ArrayFile:
        """Get (or create a handle for) the named column file."""
        require("/" not in name and name not in ("", ".", ".."), f"bad file name {name!r}")
        key = name
        existing = self._files.get(key)
        if existing is not None:
            require(
                existing.dtype == np.dtype(dtype),
                f"file {name!r} already opened with dtype {existing.dtype}",
            )
            return existing
        f = ArrayFile(
            self.root / name,
            np.dtype(dtype),
            self.disk,
            cache=self.page_cache,
            checksums=self.checksums,
        )
        self._files[key] = f
        return f

    # -- metadata sidecars ---------------------------------------------------
    #
    # Grid metas and checkpoint sidecars are JSON descriptors of on-disk
    # state, read/written through the device so callers outside storage/
    # never touch files directly. Like the CRC sidecars, their (tiny)
    # traffic is modeled as inline with the transfers they describe, so
    # it is not charged.

    def read_meta_text(self, name: str) -> str:
        """Read a metadata sidecar (uncharged; see note above)."""
        require("/" not in name and name not in ("", ".", ".."), f"bad file name {name!r}")
        return (self.root / name).read_text()

    def write_meta_text(self, name: str, text: str, atomic: bool = False) -> None:
        """Write a metadata sidecar.

        With ``atomic=True`` the text lands in ``<name>.tmp`` first and
        is committed with an atomic rename — the crash-consistency
        primitive the checkpoint layer builds on (a torn sidecar must
        never parse as valid).
        """
        require("/" not in name and name not in ("", ".", ".."), f"bad file name {name!r}")
        target = self.root / name
        if not atomic:
            target.write_text(text)
            return
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(text)
        tmp.replace(target)

    def file_names(self) -> Iterator[str]:
        return iter(sorted(p.name for p in self.root.iterdir() if p.is_file()))

    def total_bytes(self) -> int:
        """Total on-disk size of all files under the device root."""
        return sum(p.stat().st_size for p in self.root.iterdir() if p.is_file())

    def purge(self) -> None:
        """Delete every file under the device root.

        Every removed file is also dropped from the page cache — a
        purged-then-recreated file must miss, not inherit phantom pages
        (and undercharged I/O) from its deleted predecessor.
        """
        for f in list(self._files.values()):
            f.delete()
        self._files.clear()
        for p in self.root.iterdir():
            if p.is_file():
                if self.page_cache is not None:
                    self.page_cache.invalidate_file(p.name)
                p.unlink()
