"""File-backed typed arrays with modeled I/O charging.

Graph partitions live on disk as *column files*: one flat binary file per
edge attribute (sources, destinations, weights) plus index files. Every
read and write goes through :class:`ArrayFile`, which performs the real
file operation **and** charges the byte movement to the owning
:class:`~repro.storage.disk.SimulatedDisk`.

Design notes
------------
* Files hold a single fixed dtype; offsets are expressed in items, not
  bytes, so callers never do size arithmetic.
* Scattered reads (:meth:`ArrayFile.read_gather`) are the on-demand I/O
  model's workhorse: given per-run (start, count) pairs they gather all
  runs with one vectorized memmap fancy-index — real page reads, no
  Python-level per-run loop — and charge each run as one request,
  split into sequential/random classes by the caller-provided mask
  (the scheduler's ``S_seq``/``S_ran`` split, §4.1 of the paper).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

import numpy as np

from repro.storage.disk import SimulatedDisk
from repro.storage.pagecache import PageCache
from repro.utils.validation import require

PathLike = Union[str, os.PathLike]


class ArrayFile:
    """A flat binary file of items with one fixed dtype.

    Instances are lightweight handles; the item count is tracked in
    memory and verified against the on-disk size.
    """

    def __init__(
        self,
        path: PathLike,
        dtype: np.dtype,
        disk: SimulatedDisk,
        cache: Optional[PageCache] = None,
    ) -> None:
        self.path = Path(path)
        self.dtype = np.dtype(dtype)
        self.disk = disk
        self.cache = cache
        self._itemsize = self.dtype.itemsize
        self._mmap: Optional[np.memmap] = None

    # -- charging through the (optional) simulated page cache ---------------

    def _charge_read(
        self, offset_bytes: int, nbytes: int, sequential: bool, requests: int = 1
    ) -> None:
        if self.cache is not None:
            nbytes = self.cache.access(self.path.name, offset_bytes, nbytes)
            if nbytes == 0:
                return  # fully cache-resident: no disk request at all
        if sequential:
            self.disk.charge_read_sequential(nbytes, requests=requests)
        else:
            self.disk.charge_read_random(nbytes, requests=requests)

    def _charge_write(
        self, offset_bytes: int, nbytes: int, sequential: bool, requests: int = 1
    ) -> None:
        if self.cache is not None:
            # write-through with write-allocate: disk is charged fully,
            # but the written pages become cache-resident.
            self.cache.write(self.path.name, offset_bytes, nbytes)
        if sequential:
            self.disk.charge_write_sequential(nbytes, requests=requests)
        else:
            self.disk.charge_write_random(nbytes, requests=requests)

    # -- metadata ------------------------------------------------------

    @property
    def exists(self) -> bool:
        return self.path.exists()

    @property
    def nbytes(self) -> int:
        return self.path.stat().st_size if self.exists else 0

    @property
    def item_count(self) -> int:
        nbytes = self.nbytes
        require(
            nbytes % self._itemsize == 0,
            f"{self.path} size {nbytes} is not a multiple of itemsize {self._itemsize}",
        )
        return nbytes // self._itemsize

    # -- writes ----------------------------------------------------------

    def write(self, array: np.ndarray) -> None:
        """Replace the file contents with ``array`` (sequential write)."""
        data = np.ascontiguousarray(array, dtype=self.dtype)
        self._invalidate_mmap()
        if self.cache is not None:
            self.cache.invalidate_file(self.path.name)  # contents replaced
        data.tofile(self.path)
        self._charge_write(0, data.nbytes, sequential=True)

    def append(self, array: np.ndarray) -> None:
        """Append ``array`` at the end of the file (sequential write)."""
        data = np.ascontiguousarray(array, dtype=self.dtype)
        self._invalidate_mmap()
        offset = self.nbytes
        with open(self.path, "ab") as f:
            data.tofile(f)
        self._charge_write(offset, data.nbytes, sequential=True)

    def overwrite_slice(self, start_item: int, array: np.ndarray, random: bool = True) -> None:
        """Overwrite ``len(array)`` items starting at ``start_item``.

        Used for in-place vertex value writeback; charged as a random
        write unless ``random=False``.
        """
        data = np.ascontiguousarray(array, dtype=self.dtype)
        require(start_item >= 0, "start_item must be >= 0")
        require(
            start_item + len(data) <= self.item_count,
            "overwrite_slice beyond end of file",
        )
        self._invalidate_mmap()
        with open(self.path, "r+b") as f:
            f.seek(start_item * self._itemsize)
            data.tofile(f)
        self._charge_write(start_item * self._itemsize, data.nbytes, sequential=not random)

    # -- reads -----------------------------------------------------------

    def read_all(self) -> np.ndarray:
        """Read the entire file as one sequential scan."""
        data = np.fromfile(self.path, dtype=self.dtype)
        self._charge_read(0, data.nbytes, sequential=True)
        return data

    def read_slice(self, start_item: int, count: int, sequential: bool = True) -> np.ndarray:
        """Read ``count`` items starting at ``start_item``."""
        require(start_item >= 0 and count >= 0, "negative offset or count")
        if count == 0:
            return np.empty(0, dtype=self.dtype)
        require(start_item + count <= self.item_count, "read_slice beyond end of file")
        data = np.fromfile(
            self.path, dtype=self.dtype, count=count, offset=start_item * self._itemsize
        )
        self._charge_read(start_item * self._itemsize, data.nbytes, sequential)
        return data

    def read_gather(
        self,
        starts: np.ndarray,
        counts: np.ndarray,
        seq_run_mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Gather multiple (start, count) runs into one concatenated array.

        ``seq_run_mask[k]`` selects whether run ``k`` is charged at
        sequential or random bandwidth; by default every run is random.
        Runs are charged one request each. Returns the runs concatenated
        in argument order.
        """
        starts = np.asarray(starts, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        require(starts.shape == counts.shape, "starts/counts shape mismatch")
        if starts.size == 0:
            return np.empty(0, dtype=self.dtype)
        require(counts.min() >= 0 and starts.min() >= 0, "negative start or count")
        total_items = self.item_count
        require(int((starts + counts).max()) <= total_items, "gather run beyond end of file")

        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=self.dtype)

        # Vectorized multi-run gather: positions[r] enumerates each run's
        # item indices back to back, then one fancy-index on the memmap.
        cum = np.concatenate(([0], np.cumsum(counts)[:-1]))
        positions = (
            np.arange(total, dtype=np.int64)
            - np.repeat(cum, counts)
            + np.repeat(starts, counts)
        )
        data = np.asarray(self._get_mmap()[positions])

        nonempty = counts > 0
        if seq_run_mask is None:
            seq_run_mask = np.zeros_like(nonempty)
        else:
            seq_run_mask = np.asarray(seq_run_mask, dtype=bool)
            require(seq_run_mask.shape == starts.shape, "seq_run_mask shape mismatch")
        if self.cache is not None:
            # Per-run cache filtering (runs are few after merging).
            for k in np.flatnonzero(nonempty):
                self._charge_read(
                    int(starts[k]) * self._itemsize,
                    int(counts[k]) * self._itemsize,
                    sequential=bool(seq_run_mask[k]),
                )
            return data
        seq_runs = nonempty & seq_run_mask
        ran_runs = nonempty & ~seq_run_mask
        seq_bytes = int(counts[seq_runs].sum()) * self._itemsize
        ran_bytes = int(counts[ran_runs].sum()) * self._itemsize
        if seq_bytes or int(seq_runs.sum()):
            self.disk.charge_read_sequential(seq_bytes, requests=int(seq_runs.sum()))
        if ran_bytes or int(ran_runs.sum()):
            self.disk.charge_read_random(ran_bytes, requests=int(ran_runs.sum()))
        return data

    # -- lifecycle ---------------------------------------------------------

    def delete(self) -> None:
        self._invalidate_mmap()
        if self.exists:
            self.path.unlink()

    def _get_mmap(self) -> np.memmap:
        if self._mmap is None or self._mmap.shape[0] != self.item_count:
            self._mmap = np.memmap(self.path, dtype=self.dtype, mode="r")
        return self._mmap

    def _invalidate_mmap(self) -> None:
        self._mmap = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArrayFile({self.path.name}, dtype={self.dtype}, items={self.item_count if self.exists else 0})"


class Device:
    """A directory of :class:`ArrayFile` objects on one simulated disk.

    Acts as the 'volume' a graph's on-disk representation lives on; all
    files created through one device share its :class:`SimulatedDisk`
    accounting.
    """

    def __init__(
        self,
        root: PathLike,
        disk: Optional[SimulatedDisk] = None,
        page_cache: Optional[PageCache] = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.disk = disk if disk is not None else SimulatedDisk()
        self.page_cache = page_cache
        self._files: Dict[str, ArrayFile] = {}

    def array_file(self, name: str, dtype: np.dtype) -> ArrayFile:
        """Get (or create a handle for) the named column file."""
        require("/" not in name and name not in ("", ".", ".."), f"bad file name {name!r}")
        key = name
        existing = self._files.get(key)
        if existing is not None:
            require(
                existing.dtype == np.dtype(dtype),
                f"file {name!r} already opened with dtype {existing.dtype}",
            )
            return existing
        f = ArrayFile(self.root / name, np.dtype(dtype), self.disk, cache=self.page_cache)
        self._files[key] = f
        return f

    def file_names(self) -> Iterator[str]:
        return iter(sorted(p.name for p in self.root.iterdir() if p.is_file()))

    def total_bytes(self) -> int:
        """Total on-disk size of all files under the device root."""
        return sum(p.stat().st_size for p in self.root.iterdir() if p.is_file())

    def purge(self) -> None:
        """Delete every file under the device root."""
        for f in list(self._files.values()):
            f.delete()
        self._files.clear()
        for p in self.root.iterdir():
            if p.is_file():
                p.unlink()
