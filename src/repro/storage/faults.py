"""Deterministic fault injection for the storage substrate.

The paper's headline workloads run for hours out-of-core (Kron30 SSSP:
~6 h on the testbed), which makes disk faults, torn writes, and mid-run
crashes *normal operating conditions* rather than edge cases. This
module provides the machinery to prove the system survives them:

* a seeded :class:`FaultPlan` describes, declaratively and
  deterministically, which storage operations fault — transient
  ``IOError`` s on read/write, torn writes that persist only a prefix of
  the payload, single-bit flips in named column files, and named *crash
  points* at which the whole run dies;
* a :class:`FaultInjector` consumes the plan at run time. It attaches to
  a :class:`~repro.storage.disk.SimulatedDisk` (``disk.injector``), from
  where every :class:`~repro.storage.blockfile.ArrayFile` operation and
  every engine crash point polls it.

Faults are counted per *matching operation* (1-based ``at_op`` ordinal,
``count`` consecutive ops), so a given plan replays identically on every
run — tests can kill a run at a precise block of a precise iteration and
resume it.

Error taxonomy
--------------
:class:`TransientIOError`
    A retryable device error. :class:`~repro.storage.blockfile.ArrayFile`
    absorbs up to its retry budget with modeled backoff; exhaustion
    re-raises it (making the fault *unrecoverable* to the caller).
:class:`GatherFault`
    An unrecoverable fault during an on-demand (selective) gather, raised
    by the SCIU round *after* rolling the engine back to the round
    boundary — the engine responds by degrading that iteration to the
    full-streaming I/O model.
:class:`ChecksumError`
    On-disk bytes disagree with their recorded CRC32. Never absorbed:
    corruption must surface as an error, not a silently wrong result.
:class:`SimulatedCrash`
    Injected process death. Derives from ``BaseException`` so that no
    recovery or fallback path can accidentally absorb it — a crash kills
    the run exactly like SIGKILL would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple, Union

if TYPE_CHECKING:  # blockfile imports this module; import only for types
    from repro.storage.blockfile import Device

from repro.utils.rng import make_rng
from repro.utils.validation import check_fraction, require


class FaultError(IOError):
    """Base class for injected storage faults."""


class TransientIOError(FaultError):
    """A transient, retryable device error on one read/write operation."""


class GatherFault(FaultError):
    """Unrecoverable fault during an on-demand gather (safe to degrade)."""


class ChecksumError(Exception):
    """On-disk data does not match its recorded CRC32 checksum."""


class SimulatedCrash(BaseException):
    """Injected process death at a named crash point or torn write."""


#: Fault kinds a :class:`FaultSpec` may carry. The ``msg-*`` kinds target
#: the cluster interconnect (see :mod:`repro.cluster.interconnect`): the
#: ``pattern`` matches *channel names* (``"w{src}->w{dst}"``) instead of
#: file names, and ``at_op`` counts send attempts on matching channels.
FAULT_KINDS = (
    "transient-read",
    "transient-write",
    "torn-write",
    "bit-flip",
    "msg-drop",
    "msg-dup",
    "msg-corrupt",
)

#: The subset of :data:`FAULT_KINDS` consumed by the interconnect, in the
#: priority order applied when several are due on the same send attempt
#: (a dropped message cannot also arrive corrupted or duplicated).
MESSAGE_FAULT_KINDS = ("msg-drop", "msg-corrupt", "msg-dup")


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault rule.

    ``pattern`` is an ``fnmatch`` glob over file *names* (not paths).
    The rule fires on matching operations ``at_op .. at_op + count - 1``
    (1-based, counted per spec across the injector's lifetime).
    ``fraction`` is the portion of the payload a torn write persists;
    ``bit`` pins the flipped bit of a bit-flip (seeded-random if None).
    """

    kind: str
    pattern: str = "*"
    at_op: int = 1
    count: int = 1
    fraction: float = 0.5
    bit: Optional[int] = None

    def __post_init__(self) -> None:
        require(self.kind in FAULT_KINDS, f"unknown fault kind {self.kind!r}")
        require(self.at_op >= 1, "at_op is a 1-based operation ordinal")
        require(self.count >= 1, "count must be >= 1")
        check_fraction(self.fraction, "fraction")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seeded schedule of storage faults and crashes.

    ``crash_points`` maps a crash-point name (e.g. ``"mid-scatter"``,
    ``"mid-checkpoint"``, ``"post-apply"``) to the 1-based hit ordinal at
    which :class:`SimulatedCrash` is raised.
    """

    specs: Tuple[FaultSpec, ...] = ()
    crash_points: Mapping[str, int] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        object.__setattr__(self, "crash_points", dict(self.crash_points))
        for point, hit in self.crash_points.items():
            require(int(hit) >= 1, f"crash point {point!r} hit ordinal must be >= 1")


class FaultInjector:
    """Runtime consumer of a :class:`FaultPlan`.

    One injector serves one :class:`~repro.storage.disk.SimulatedDisk`;
    attach it with ``disk.injector = FaultInjector(plan)``. All decisions
    are deterministic functions of the plan and the operation sequence,
    so a failing schedule can be replayed exactly.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = make_rng(plan.seed)
        self._op_counts: Dict[int, int] = {}
        self._crash_hits: Dict[str, int] = {}
        #: Human-readable log of every fault actually injected.
        self.events: List[str] = []

    # -- operation-level faults -----------------------------------------

    def _due(self, kind: str, name: str) -> Optional[FaultSpec]:
        """Advance op counters for every matching spec; return one due."""
        hit: Optional[FaultSpec] = None
        for idx, spec in enumerate(self.plan.specs):
            if spec.kind != kind or not fnmatch(name, spec.pattern):
                continue
            n = self._op_counts.get(idx, 0) + 1
            self._op_counts[idx] = n
            if hit is None and spec.at_op <= n < spec.at_op + spec.count:
                hit = spec
        return hit

    def fault_read(self, name: str) -> bool:
        """Poll for a transient fault on one read attempt of ``name``."""
        if self._due("transient-read", name) is None:
            return False
        self.events.append(f"transient-read:{name}")
        return True

    def fault_write(self, name: str) -> bool:
        """Poll for a transient fault on one write attempt of ``name``."""
        if self._due("transient-write", name) is None:
            return False
        self.events.append(f"transient-write:{name}")
        return True

    def torn_write(self, name: str) -> Optional[float]:
        """Poll for a torn write; returns the surviving fraction if due."""
        spec = self._due("torn-write", name)
        if spec is None:
            return None
        self.events.append(f"torn-write:{name}")
        return spec.fraction

    def fault_message(self, channel: str) -> Optional[str]:
        """Poll for an interconnect fault on one send attempt on ``channel``.

        Counts the attempt against every matching ``msg-*`` spec and
        returns the due kind (:data:`MESSAGE_FAULT_KINDS` priority) or
        ``None``. Retries are fresh attempts, so a ``count=1`` drop spec
        perturbs exactly one transmission and the retry goes through.
        """
        due: Optional[str] = None
        for kind in MESSAGE_FAULT_KINDS:
            if self._due(kind, channel) is not None and due is None:
                due = kind
        if due is not None:
            self.events.append(f"{due}:{channel}")
        return due

    # -- crash points ----------------------------------------------------

    def crash_point(self, point: str) -> None:
        """Die with :class:`SimulatedCrash` at the planned hit of ``point``."""
        due = self.plan.crash_points.get(point)
        if due is None:
            return
        n = self._crash_hits.get(point, 0) + 1
        self._crash_hits[point] = n
        if n == int(due):
            self.events.append(f"crash:{point}")
            raise SimulatedCrash(point)

    # -- corruption ------------------------------------------------------

    def apply_bit_flips(self, device: "Device") -> List[Tuple[str, int]]:
        """Corrupt the device files named by the plan's bit-flip specs.

        Each bit-flip spec flips exactly one bit (``spec.bit`` or a
        seeded-random position) in every matching data file. Checksum
        sidecars are never targeted — the point is corrupting data the
        checksums must then catch. Returns ``(file name, bit)`` pairs.
        """
        flipped: List[Tuple[str, int]] = []
        for spec in self.plan.specs:
            if spec.kind != "bit-flip":
                continue
            for name in list(device.file_names()):
                if name.endswith(".crc") or not fnmatch(name, spec.pattern):
                    continue
                path = device.root / name
                nbits = path.stat().st_size * 8
                if nbits == 0:
                    continue
                bit = (
                    spec.bit
                    if spec.bit is not None
                    else int(self._rng.integers(nbits))
                )
                flip_bit(path, bit)
                device.disk.stats.faults_injected += 1
                self.events.append(f"bit-flip:{name}@{bit}")
                flipped.append((name, bit))
        return flipped


def flip_bit(path: Union[str, Path], bit_index: int) -> None:
    """Flip one bit of a file in place (corruption helper for tests)."""
    path = Path(path)
    data = bytearray(path.read_bytes())
    byte, offset = divmod(int(bit_index), 8)
    require(0 <= byte < len(data), f"bit {bit_index} beyond end of {path.name}")
    data[byte] ^= 1 << offset
    path.write_bytes(data)
