"""Checker base class.

A checker owns one stable rule id (``GSD1xx``), a directory scope within
the ``repro`` package, and an optional escape-hatch marker. Concrete
checkers implement :meth:`Checker.visit` over the file's AST and emit
findings through :meth:`Checker.report`, which centralizes suppression
and context capture.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Tuple

from repro.analysis.findings import ERROR, Finding
from repro.analysis.source import SourceFile


class Checker:
    """One project-invariant rule."""

    #: Stable rule identifier, e.g. ``"GSD101"``.
    rule_id: str = ""
    #: One-line rule title (shown by ``graphsd lint --rules``).
    title: str = ""
    severity: str = ERROR
    #: Escape-hatch marker that suppresses this rule, or None.
    suppress_marker: Optional[str] = None
    #: First-level package directories the rule applies to; empty means
    #: every file. A file outside the package (no known segments) is in
    #: scope only for unscoped rules.
    scope_dirs: Tuple[str, ...] = ()

    def applies_to(self, rel: str) -> bool:
        if not self.scope_dirs:
            return True
        head = rel.split("/", 1)[0]
        return head in self.scope_dirs

    # -- running -----------------------------------------------------------

    def check(self, sf: SourceFile) -> List[Finding]:
        """Run the rule over one file; suppressions already applied."""
        self._findings: List[Finding] = []
        self._sf = sf
        self.visit(sf)
        return self._findings

    def visit(self, sf: SourceFile) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def report(self, node: ast.AST, message: str) -> None:
        """Emit a finding at ``node`` unless an escape hatch covers it."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self.suppress_marker and self._sf.suppressed(self.suppress_marker, line):
            return
        self._findings.append(
            Finding(
                rule_id=self.rule_id,
                severity=self.severity,
                path=self._sf.rel,
                line=line,
                col=col,
                message=message,
                context=self._sf.line_text(line),
            )
        )


def walk_calls(tree: ast.AST) -> Sequence[ast.Call]:
    """Every Call node in the tree (helper shared by several checkers)."""
    return [n for n in ast.walk(tree) if isinstance(n, ast.Call)]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` as a string for Name/Attribute chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
