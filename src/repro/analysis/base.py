"""Checker base class.

A checker owns one stable rule id (``GSD1xx``), a directory scope within
the ``repro`` package, and an optional escape-hatch marker. Two
families exist:

* **syntactic** rules subclass :class:`Checker` directly, implement
  :meth:`Checker.visit` over one file's AST and see nothing else;
* **whole-program** rules subclass :class:`GraphChecker`, implement
  :meth:`GraphChecker.visit_project` over the assembled
  :class:`~repro.analysis.graph.project.ProjectGraph` (symbol table,
  call graph, CFGs) and may report findings in any file.

Both emit through :meth:`Checker.report` / :meth:`GraphChecker.report_at`,
which centralize suppression and context capture.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Tuple

from repro.analysis.findings import ERROR, Finding
from repro.analysis.source import SourceFile


class Checker:
    """One project-invariant rule."""

    #: Stable rule identifier, e.g. ``"GSD101"``.
    rule_id: str = ""
    #: One-line rule title (shown by ``graphsd lint --rules``).
    title: str = ""
    #: Rule family (shown by ``graphsd lint --rules``): ``"syntactic"``
    #: for single-file AST rules, ``"whole-program"`` for graph rules.
    family: str = "syntactic"
    #: Whole-program rules need the project graph built before running.
    requires_graph: bool = False
    severity: str = ERROR
    #: Escape-hatch marker that suppresses this rule, or None.
    suppress_marker: Optional[str] = None
    #: First-level package directories the rule applies to; empty means
    #: every file. A file outside the package (no known segments) is in
    #: scope only for unscoped rules.
    scope_dirs: Tuple[str, ...] = ()

    def applies_to(self, rel: str) -> bool:
        if not self.scope_dirs:
            return True
        head = rel.split("/", 1)[0]
        return head in self.scope_dirs

    # -- running -----------------------------------------------------------

    def check(self, sf: SourceFile) -> List[Finding]:
        """Run the rule over one file; suppressions already applied."""
        self._findings: List[Finding] = []
        self._sf = sf
        self.visit(sf)
        return self._findings

    def visit(self, sf: SourceFile) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def report(self, node: ast.AST, message: str) -> None:
        """Emit a finding at ``node`` unless an escape hatch covers it."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self.suppress_marker and self._sf.suppressed(self.suppress_marker, line):
            return
        self._findings.append(
            Finding(
                rule_id=self.rule_id,
                severity=self.severity,
                path=self._sf.rel,
                line=line,
                col=col,
                message=message,
                context=self._sf.line_text(line),
            )
        )


class GraphChecker(Checker):
    """A whole-program rule driven by the project graph.

    Runs once per lint invocation (not once per file). Findings are
    attributed to whichever file each defect lives in; the runner
    filters them down to the set of files actually being linted, so a
    ``--changed`` run still sees interprocedural findings that *land*
    in a changed file even when the other end of the chain did not
    change.
    """

    family = "whole-program"
    requires_graph = True

    def check(self, sf: SourceFile) -> List[Finding]:
        return []  # graph rules do not run per-file

    def check_project(self, project: "object") -> List[Finding]:
        """Run the rule over the whole project graph."""
        self._findings = []
        self.visit_project(project)
        return self._findings

    def visit_project(self, project: "object") -> None:  # pragma: no cover
        raise NotImplementedError

    def report_at(self, sf: SourceFile, node: ast.AST, message: str) -> None:
        """Emit a finding at ``node`` in ``sf`` unless suppressed there."""
        if not self.applies_to(sf.rel):
            return
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self.suppress_marker and sf.suppressed(self.suppress_marker, line):
            return
        self._findings.append(
            Finding(
                rule_id=self.rule_id,
                severity=self.severity,
                path=sf.rel,
                line=line,
                col=col,
                message=message,
                context=sf.line_text(line),
            )
        )


def walk_calls(tree: ast.AST) -> Sequence[ast.Call]:
    """Every Call node in the tree (helper shared by several checkers)."""
    return [n for n in ast.walk(tree) if isinstance(n, ast.Call)]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` as a string for Name/Attribute chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
