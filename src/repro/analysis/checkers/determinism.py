"""GSD101 — sim-determinism.

Simulated execution must be a pure function of inputs and seeds: PR 2's
pipelined==serial bit-identical guarantee (and every recorded benchmark)
dies the moment an engine path consults wall-clock time or unseeded
randomness. Inside the engine directories (``core/``, ``graph/``,
``storage/``, ``algorithms/``, ``cluster/``) this rule forbids:

* importing ``time``, ``datetime`` or ``random`` at all — modeled time
  comes from :class:`repro.utils.timers.SimClock`, randomness from
  :mod:`repro.utils.rng`;
* any use of ``numpy.random`` (``np.random.default_rng`` included, even
  seeded — centralizing construction in ``utils/rng`` is the invariant);
* importing from ``numpy.random``.

``utils/`` itself is intentionally out of scope: it is where the two
sanctioned wrappers (``WallTimer``, ``make_rng``) live.

``obs/`` is in scope with a carve-out: the observability layer's whole
job is to record *both* timelines, so it may import ``time`` /
``datetime`` (wall-clock reads never feed back into simulated state —
traced runs stay bit-identical to untraced ones). Randomness stays
forbidden there like everywhere else.

Escape hatch: ``# sim-ok: <reason>``.
"""

from __future__ import annotations

import ast
from typing import Set

from repro.analysis.base import Checker, dotted_name
from repro.analysis.source import SourceFile

_FORBIDDEN_MODULES = ("time", "datetime", "random")
#: Wall-clock modules the observability layer is allowed to read.
_WALL_CLOCK_MODULES = ("time", "datetime")


class SimDeterminismChecker(Checker):
    rule_id = "GSD101"
    title = "sim paths must not touch wall-clock time or ad-hoc randomness"
    suppress_marker = "sim-ok"
    scope_dirs = ("core", "graph", "storage", "algorithms", "obs", "cluster", "tune")

    def visit(self, sf: SourceFile) -> None:
        in_obs = sf.rel.split("/", 1)[0] == "obs"
        forbidden = tuple(
            m
            for m in _FORBIDDEN_MODULES
            if not (in_obs and m in _WALL_CLOCK_MODULES)
        )
        numpy_aliases: Set[str] = set()
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".", 1)[0]
                    if root in forbidden:
                        self.report(
                            node,
                            f"import of {alias.name!r}: use repro.utils.timers "
                            "(SimClock/WallTimer) for timing and repro.utils.rng "
                            "for randomness",
                        )
                    if alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".", 1)[0]
                if root in forbidden:
                    self.report(
                        node,
                        f"import from {node.module!r}: use repro.utils.timers / "
                        "repro.utils.rng instead",
                    )
                if node.module == "numpy" and any(
                    a.name == "random" for a in node.names
                ):
                    self.report(
                        node, "numpy.random import: construct RNGs via repro.utils.rng"
                    )
                if (node.module or "").startswith("numpy.random"):
                    self.report(
                        node, "numpy.random import: construct RNGs via repro.utils.rng"
                    )
        # Attribute uses of <numpy alias>.random.* (catches seeded and
        # unseeded construction alike — the sanctioned path is utils/rng).
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Attribute):
                continue
            name = dotted_name(node)
            if name is None:
                continue
            parts = name.split(".")
            # Exactly <alias>.random.<member>: longer chains contain this
            # three-part Attribute as a nested node, so matching the exact
            # length reports each use once.
            if len(parts) == 3 and parts[0] in numpy_aliases and parts[1] == "random":
                self.report(
                    node,
                    f"{name}: all randomness must flow through repro.utils.rng "
                    "(make_rng / spawn_rngs)",
                )
