"""GSD102 — charged I/O.

Every byte the system moves must be charged to the dual-timeline
:class:`~repro.utils.timers.SimClock` and counted in
:class:`~repro.storage.iostats.IOStats`; with checksums enabled it must
also be CRC-verified. That only holds when reads and writes flow through
the ``storage/`` substrate (:class:`~repro.storage.blockfile.ArrayFile`
/ :class:`~repro.storage.blockfile.Device`). Outside ``storage/`` this
rule flags the raw escape routes:

* builtin ``open(...)``;
* ``Path``-style ``.read_bytes`` / ``.write_bytes`` / ``.read_text`` /
  ``.write_text`` / ``.tofile`` method calls;
* numpy file I/O: ``np.fromfile``, ``np.memmap``, ``np.load``,
  ``np.save``, ``np.savez``, ``np.savez_compressed``.

Legitimate host-side I/O (benchmark reports, external interchange files
that live outside any simulated device) is annotated
``# charged-io-ok: <reason>`` — the annotation is the audit trail.
"""

from __future__ import annotations

import ast
from typing import Set

from repro.analysis.base import Checker, dotted_name
from repro.analysis.source import SourceFile

#: Method names that bypass the storage layer regardless of receiver.
_RAW_METHODS = ("read_bytes", "write_bytes", "read_text", "write_text", "tofile")
#: numpy module functions that perform file I/O.
_NUMPY_IO = ("fromfile", "memmap", "load", "save", "savez", "savez_compressed")


class ChargedIOChecker(Checker):
    rule_id = "GSD102"
    title = "file I/O outside storage/ must flow through Device/ArrayFile"
    suppress_marker = "charged-io-ok"
    scope_dirs = ()  # everywhere except the exclusions below

    def applies_to(self, rel: str) -> bool:
        head = rel.split("/", 1)[0]
        # storage/ *is* the charged substrate; analysis/ reads source
        # files, not graph data; utils/ holds no I/O by construction.
        return head not in ("storage", "analysis")

    def visit(self, sf: SourceFile) -> None:
        numpy_aliases: Set[str] = {
            alias.asname or "numpy"
            for node in ast.walk(sf.tree)
            if isinstance(node, ast.Import)
            for alias in node.names
            if alias.name == "numpy"
        }
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                self.report(
                    node,
                    "raw open(): route this through repro.storage (Device/"
                    "ArrayFile) so the transfer is clock-charged and "
                    "checksum-verified, or annotate why it is host-side I/O",
                )
            elif isinstance(func, ast.Attribute):
                name = dotted_name(func)
                if (
                    name is not None
                    and name.count(".") == 1
                    and name.split(".")[0] in numpy_aliases
                    and name.split(".")[1] in _NUMPY_IO
                ):
                    self.report(
                        node,
                        f"{name}: numpy file I/O bypasses the charged storage "
                        "layer (use ArrayFile, or annotate why it is host-side)",
                    )
                elif func.attr in _RAW_METHODS:
                    self.report(
                        node,
                        f".{func.attr}(): raw file I/O bypasses the charged "
                        "storage layer (use Device/ArrayFile, or annotate why "
                        "it is host-side)",
                    )
