"""The project-invariant checkers (rule registry)."""

from __future__ import annotations

from typing import List, Type

from repro.analysis.base import Checker
from repro.analysis.checkers.charged_io import ChargedIOChecker
from repro.analysis.checkers.determinism import SimDeterminismChecker
from repro.analysis.checkers.dtypes import DtypeSafetyChecker
from repro.analysis.checkers.exceptions import ExceptionHygieneChecker
from repro.analysis.checkers.locks import LockDisciplineChecker

ALL_CHECKERS: List[Type[Checker]] = [
    SimDeterminismChecker,
    ChargedIOChecker,
    LockDisciplineChecker,
    DtypeSafetyChecker,
    ExceptionHygieneChecker,
]

__all__ = [
    "ALL_CHECKERS",
    "ChargedIOChecker",
    "DtypeSafetyChecker",
    "ExceptionHygieneChecker",
    "LockDisciplineChecker",
    "SimDeterminismChecker",
]
