"""The project-invariant checkers (rule registry)."""

from __future__ import annotations

from typing import List, Type

from repro.analysis.base import Checker
from repro.analysis.checkers.charged_io import ChargedIOChecker
from repro.analysis.checkers.determinism import SimDeterminismChecker
from repro.analysis.checkers.dtypes import DtypeSafetyChecker
from repro.analysis.checkers.exceptions import ExceptionHygieneChecker
from repro.analysis.checkers.graph_charge import ChargeCoverageChecker
from repro.analysis.checkers.graph_lifecycle import ResourceLifecycleChecker
from repro.analysis.checkers.graph_locks import LockContextChecker
from repro.analysis.checkers.graph_order import IterationOrderChecker
from repro.analysis.checkers.locks import LockDisciplineChecker

ALL_CHECKERS: List[Type[Checker]] = [
    SimDeterminismChecker,
    ChargedIOChecker,
    LockDisciplineChecker,
    DtypeSafetyChecker,
    ExceptionHygieneChecker,
    ChargeCoverageChecker,
    LockContextChecker,
    IterationOrderChecker,
    ResourceLifecycleChecker,
]

__all__ = [
    "ALL_CHECKERS",
    "ChargeCoverageChecker",
    "ChargedIOChecker",
    "DtypeSafetyChecker",
    "ExceptionHygieneChecker",
    "IterationOrderChecker",
    "LockContextChecker",
    "LockDisciplineChecker",
    "ResourceLifecycleChecker",
    "SimDeterminismChecker",
]
