"""GSD106 — interprocedural charge coverage.

GSD102 flags raw byte I/O file-by-file; this rule walks the project call
graph and asks the question that actually matters for the model's
accuracy: **can an engine entry point reach raw byte I/O without
passing through the charged substrate?** A chain like::

    repro.core.engine.Engine.run -> ... -> helper._slurp -> open(...)

means simulated bytes moved without a SimClock charge or an IOStats
count — the benchmark numbers silently under-report DISK time.

Mechanics:

* **Sinks** are the same raw escape routes GSD102 matches (``open``,
  ``.read_bytes``-style methods, numpy file I/O), found in *any*
  project function — including ``storage/``, which GSD102 exempts
  wholesale.
* **Mediators** are the methods of the charged substrate classes
  (``ArrayFile``, ``Device``, ``SimulatedDisk``): raw I/O *inside* a
  mediator is the substrate doing its job, and chains that pass
  *through* a mediator are charged by construction.
* **Entries** are the public (non-underscore) functions and methods of
  ``core/`` and ``cluster/`` — the surface a simulation driver calls.

A finding is reported at the sink when a caller chain exists from an
entry to the sink's enclosing function that never traverses a mediator.
The chain is printed in the message so the fix target is obvious.
Unresolvable calls are open edges — they cannot *create* a chain, so
this rule under-approximates reachability and never reports a chain
that the resolved graph does not witness.

Escape hatch: ``# charged-io-ok: <reason>`` (same audit trail as
GSD102 — host-side I/O stays host-side no matter who calls it).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.base import GraphChecker, dotted_name
from repro.analysis.checkers.charged_io import _NUMPY_IO, _RAW_METHODS
from repro.analysis.graph.callgraph import shortest_chain
from repro.analysis.graph.symbols import FunctionInfo

#: Substrate classes whose methods mediate (and charge) byte movement.
_MEDIATOR_CLASSES = (
    "repro.storage.blockfile.ArrayFile",
    "repro.storage.blockfile.Device",
    "repro.storage.disk.SimulatedDisk",
)

#: First-level package dirs whose public surface counts as an entry.
_ENTRY_DIRS = ("core", "cluster")


def _numpy_aliases(tree: ast.AST) -> Set[str]:
    return {
        alias.asname or "numpy"
        for node in ast.walk(tree)
        if isinstance(node, ast.Import)
        for alias in node.names
        if alias.name == "numpy"
    }


def _raw_io_calls(fn: FunctionInfo, numpy_aliases: Set[str]) -> List[ast.Call]:
    """Raw-I/O call nodes inside one function body (GSD102's tables)."""
    out: List[ast.Call] = []
    for stmt in fn.node.body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                out.append(node)
            elif isinstance(func, ast.Attribute):
                name = dotted_name(func)
                if (
                    name is not None
                    and name.count(".") == 1
                    and name.split(".")[0] in numpy_aliases
                    and name.split(".")[1] in _NUMPY_IO
                ):
                    out.append(node)
                elif func.attr in _RAW_METHODS:
                    out.append(node)
    return out


class ChargeCoverageChecker(GraphChecker):
    rule_id = "GSD106"
    title = "engine entry points must not reach raw I/O around the substrate"
    suppress_marker = "charged-io-ok"
    scope_dirs = ()  # chains cross directories by definition

    def visit_project(self, project) -> None:
        table = project.symbols
        graph = project.callgraph

        mediators: Set[str] = set()
        for cls_fqn in _MEDIATOR_CLASSES:
            cls = table.classes.get(cls_fqn)
            if cls is not None:
                mediators.update(cls.methods.values())

        entries: Set[str] = set()
        for fn in table.functions.values():
            head = fn.rel.split("/", 1)[0]
            if head in _ENTRY_DIRS and not fn.name.startswith("_"):
                entries.add(fn.fqn)

        alias_cache: Dict[str, Set[str]] = {}
        for fn in table.functions.values():
            if fn.fqn in mediators:
                continue  # the substrate is allowed to move bytes
            sf = project.source(fn.rel)
            if sf is None:
                continue
            if fn.rel not in alias_cache:
                alias_cache[fn.rel] = _numpy_aliases(sf.tree)
            sinks = _raw_io_calls(fn, alias_cache[fn.rel])
            if not sinks:
                continue
            chain = self._entry_chain(graph, fn, entries, mediators)
            if chain is None:
                continue
            rendered = " -> ".join(_short(f) for f in chain)
            for call in sinks:
                self.report_at(
                    sf,
                    call,
                    f"raw I/O reachable from engine entry point without "
                    f"passing the charged substrate: {rendered} -> "
                    f"{ast.unparse(call.func)}(); route through "
                    "Device/ArrayFile or annotate the host-side boundary",
                )

    @staticmethod
    def _entry_chain(
        graph, fn: FunctionInfo, entries: Set[str], mediators: Set[str]
    ) -> Optional[List[str]]:
        if fn.fqn in entries:
            return [fn.fqn]
        return shortest_chain(graph, fn.fqn, entries, blocked=mediators)


def _short(fqn: str) -> str:
    """Trim the ``repro.`` prefix for readable chain rendering."""
    return fqn[len("repro."):] if fqn.startswith("repro.") else fqn


__all__ = ["ChargeCoverageChecker"]
