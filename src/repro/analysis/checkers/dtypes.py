"""GSD104 — dtype safety on hot paths.

``np.zeros(n)`` silently allocates float64; ``np.arange(n)`` allocates
the platform's default integer. PR 3's narrowest-uint sub-block encoding
assumes every array's width is *chosen*, not inherited — a dtype-less
allocation on a hot path is how an int64 sneaks into a uint16 column and
quadruples the bytes (or truncates on Windows, where the default C long
is 32-bit). In ``core/``, ``graph/``, ``storage/`` and ``algorithms/``
this rule requires:

* an explicit dtype (keyword or the positional dtype slot) on
  ``np.zeros`` / ``np.empty`` / ``np.ones`` / ``np.full`` /
  ``np.arange`` / ``np.frombuffer`` / ``np.fromfile``;
* no platform-width builtins as dtypes: ``dtype=int`` (and
  ``.astype(int)``) resolve to the C long — name a numpy width instead.

``np.array`` / ``np.asarray`` without a dtype are *not* flagged:
preserving the input's dtype is usually the intent there.

Escape hatch: ``# dtype-ok: <reason>``.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional, Set

from repro.analysis.base import Checker, dotted_name
from repro.analysis.source import SourceFile

#: Constructor -> 0-based index of its positional dtype slot.
_CONSTRUCTOR_DTYPE_SLOT: Dict[str, int] = {
    "zeros": 1,
    "empty": 1,
    "ones": 1,
    "full": 2,
    "arange": 3,
    "frombuffer": 1,
    "fromfile": 1,
}


class DtypeSafetyChecker(Checker):
    rule_id = "GSD104"
    title = "hot-path numpy allocations must pin an explicit dtype"
    suppress_marker = "dtype-ok"
    scope_dirs = ("core", "graph", "storage", "algorithms", "cluster")

    def visit(self, sf: SourceFile) -> None:
        numpy_aliases: Set[str] = {
            alias.asname or "numpy"
            for node in ast.walk(sf.tree)
            if isinstance(node, ast.Import)
            for alias in node.names
            if alias.name == "numpy"
        }
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            dtype_value = self._dtype_argument(node, numpy_aliases)
            if dtype_value == "missing":
                name = dotted_name(node.func)
                self.report(
                    node,
                    f"{name}() without an explicit dtype allocates the "
                    "platform default — pin one (silent int64/float64 "
                    "defaults broke the narrowest-uint encoding, PR 3)",
                )
            elif isinstance(dtype_value, ast.Name) and dtype_value.id in (
                "int",
                "float",
            ):
                self.report(
                    dtype_value,
                    f"builtin {dtype_value.id!r} as a dtype is platform-width "
                    "(C long on Windows is 32-bit) — name a numpy width "
                    "such as np.int64",
                )

    # -- helpers -----------------------------------------------------------

    def _dtype_argument(
        self, node: ast.Call, numpy_aliases: Set[str]
    ) -> "Optional[object]":
        """The call's dtype argument node, ``"missing"`` for a flagged
        constructor without one, or None when the call is not checked."""
        func = node.func
        for kw in node.keywords:
            if kw.arg == "dtype":
                return kw.value
        # .astype(X): the first argument is the dtype.
        if isinstance(func, ast.Attribute) and func.attr == "astype" and node.args:
            return node.args[0]
        name = dotted_name(func)
        if name is None or "." not in name:
            return None
        root, member = name.split(".", 1)
        if root not in numpy_aliases:
            return None
        slot = _CONSTRUCTOR_DTYPE_SLOT.get(member)
        if slot is None:
            return None
        if len(node.args) > slot:
            return node.args[slot]
        return "missing"
