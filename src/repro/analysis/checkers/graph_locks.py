"""GSD107 — lock-context propagation across the call graph.

GSD103 is lexical: a method touching a ``guarded-by:`` field must hold
the lock *in that method*. Real code factors the guarded access into a
private helper, and the lexical rule then forces either duplicated
``with`` blocks or a scatter of ``unguarded-ok`` annotations. The
``# lock-held: <lock>`` declaration on the helper's ``def`` line fixes
that division of labor:

* GSD103 seeds the helper's lexical lock set — the guarded accesses in
  its body are legal;
* **this rule** verifies the declaration's other half: every call-graph
  path into the helper actually holds the lock.

Checked per declared function ``H`` (``# lock-held: _lock``):

* every *resolved* call edge into ``H`` must occur at a call site that
  lexically holds ``(receiver, _lock)`` — the same pair GSD103 would
  require for a direct field access. Contexts propagate: a caller that
  is itself declared ``lock-held`` with the same lock calls ``H`` on
  ``self`` legally without a ``with`` block (its own callers are
  verified in turn), so "called-with-lock-held" chains are inferred
  through the graph rather than re-annotated at every level.
* referencing ``H`` as a *value* (thread target, callback) is an
  escape: the lock context at the eventual call site is unknowable
  statically, so the reference itself is reported.
* the inverse hazard is also checked: a call site that already holds
  the lock must not call a method that *re-acquires* it (``with
  self.<lock>:`` in the callee) when the lock attribute was constructed
  as a non-reentrant ``threading.Lock`` — that is a guaranteed
  self-deadlock, invisible to per-file analysis.

Escape hatch: ``# unguarded-ok: <reason>`` at the call/reference site.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.analysis.base import GraphChecker
from repro.analysis.checkers.locks import _expr_key, lock_sets_at_calls
from repro.analysis.graph.symbols import FunctionInfo


def _lock_held_decl(sf, fn: FunctionInfo) -> Optional[str]:
    """The ``lock-held`` lock attr declared on ``fn``'s def line."""
    decls = sf.declarations("lock-held")
    value = decls.get(fn.lineno) or decls.get(fn.lineno - 1)
    return value.strip() if value is not None else None


def _acquires(fn: FunctionInfo) -> Set[str]:
    """Lock attrs ``fn`` acquires via ``with self.<attr>:`` anywhere."""
    out: Set[str] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                ctx = item.context_expr
                if (
                    isinstance(ctx, ast.Attribute)
                    and isinstance(ctx.value, ast.Name)
                    and ctx.value.id == "self"
                ):
                    out.add(ctx.attr)
    return out


def _nonreentrant_locks(table, class_fqn: str) -> Set[str]:
    """Lock attrs assigned ``threading.Lock()`` in the class ``__init__``.

    ``RLock`` (and anything not literally ``...Lock()``) is excluded —
    re-acquiring those is legal.
    """
    out: Set[str] = set()
    init_fqn = table.lookup_method(class_fqn, "__init__")
    if init_fqn is None:
        return out
    init = table.functions.get(init_fqn.fqn)
    if init is None:
        return out
    for node in ast.walk(init.node):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            continue
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "Lock"
        ):
            out.add(target.attr)
    return out


class LockContextChecker(GraphChecker):
    rule_id = "GSD107"
    title = "lock-held helpers must be called with their lock actually held"
    suppress_marker = "unguarded-ok"
    scope_dirs = ()  # driven entirely by lock-held declarations

    def visit_project(self, project) -> None:
        table = project.symbols
        graph = project.callgraph

        declared: Dict[str, str] = {}  # helper fqn -> lock attr
        for fn in table.functions.values():
            sf = project.source(fn.rel)
            if sf is None:
                continue
            lock = _lock_held_decl(sf, fn)
            if lock is not None:
                declared[fn.fqn] = lock

        #: caller fqn -> {id(Call): lexically held (owner, lock) pairs}.
        held_cache: Dict[str, Dict[int, FrozenSet[Tuple[str, str]]]] = {}

        def held_at(caller_fqn: str) -> Dict[int, FrozenSet[Tuple[str, str]]]:
            if caller_fqn not in held_cache:
                caller = table.functions.get(caller_fqn)
                body = list(caller.node.body) if caller is not None else []
                held_cache[caller_fqn] = lock_sets_at_calls(body)
            return held_cache[caller_fqn]

        for helper_fqn, lock in declared.items():
            helper = table.functions[helper_fqn]
            for edge in graph.callers.get(helper_fqn, ()):
                self._check_edge(project, table, declared, held_at, edge, helper, lock)
            for ref in graph.refs:
                if ref.target != helper_fqn:
                    continue
                user = table.functions.get(ref.user)
                sf = project.source(user.rel if user else helper.rel)
                if sf is None:
                    continue
                anchor = ast.Name(id="x")
                anchor.lineno = ref.lineno
                anchor.col_offset = 0
                self.report_at(
                    sf,
                    anchor,
                    f"{_name(helper_fqn)} is declared '# lock-held: {lock}' "
                    "but is referenced as a value here (thread target / "
                    "callback): the lock context at the eventual call site "
                    "cannot be verified",
                )

        # Inverse: holding a non-reentrant lock while calling a method
        # that re-acquires it.
        nonreentrant: Dict[str, Set[str]] = {}
        for edge in graph.edges:
            callee = table.functions.get(edge.callee)
            caller = table.functions.get(edge.caller)
            if callee is None or caller is None or callee.class_fqn is None:
                continue
            reacquired = _acquires(callee)
            if not reacquired:
                continue
            if callee.class_fqn not in nonreentrant:
                nonreentrant[callee.class_fqn] = _nonreentrant_locks(
                    table, callee.class_fqn
                )
            hazardous = reacquired & nonreentrant[callee.class_fqn]
            if not hazardous:
                continue
            held = held_at(edge.caller).get(id(edge.node), frozenset())
            recv = self._receiver_key(edge.node)
            if recv is None:
                continue
            for attr in sorted(hazardous):
                if (recv, attr) in held:
                    sf = project.source(caller.rel)
                    if sf is not None:
                        self.report_at(
                            sf,
                            edge.node,
                            f"calling {_name(edge.callee)} while holding "
                            f"{recv}.{attr}: the callee re-acquires the "
                            "non-reentrant lock (self-deadlock)",
                        )

    # -- helpers -------------------------------------------------------------

    def _check_edge(
        self,
        project,
        table,
        declared: Dict[str, str],
        held_at,
        edge,
        helper: FunctionInfo,
        lock: str,
    ) -> None:
        caller = table.functions.get(edge.caller)
        if caller is None:
            return  # module-level synthetic caller: single-threaded import
        recv = self._receiver_key(edge.node)
        if recv is None:
            recv = "self"  # bare-name call inside the same class is rare
        held = held_at(edge.caller).get(id(edge.node), frozenset())
        if (recv, lock) in held:
            return
        # Context propagation: the caller itself promises the lock.
        if (
            declared.get(edge.caller) == lock
            and recv in ("self", "cls")
        ):
            return
        sf = project.source(caller.rel)
        if sf is None:
            return
        self.report_at(
            sf,
            edge.node,
            f"call to {_name(helper.fqn)} requires '# lock-held: {lock}' "
            f"but {recv}.{lock} is not held on this path (wrap the call in "
            f"'with {recv}.{lock}:' or declare the caller lock-held)",
        )

    @staticmethod
    def _receiver_key(call: ast.Call) -> Optional[str]:
        if isinstance(call.func, ast.Attribute):
            return _expr_key(call.func.value)
        return None


def _name(fqn: str) -> str:
    return fqn[len("repro."):] if fqn.startswith("repro.") else fqn


__all__ = ["LockContextChecker"]
