"""GSD109 — resource-lifecycle balance on all CFG paths.

The engine's resources all carry a release obligation whose violation
is silent at the site and expensive later:

* a :class:`~repro.obs.trace.Tracer` span that is created but never
  entered records nothing — the trace quietly loses a phase;
* a prefetcher/gather-pool stream that is abandoned without ``close()``
  leaves a worker thread parked on a queue (and its simulated DISK
  charges half-applied) — the next round deadlocks or double-charges;
* a bare ``lock.acquire()`` without a ``release()`` on *every* path —
  including the exceptional ones — is a one-shot deadlock.

This rule checks the obligations on the per-function CFG, exceptional
edges included:

* ``<expr>.span(...)`` must be entered: used directly as a ``with``
  item, or assigned to a local that a later ``with`` item names (the
  assign-then-``with`` idiom). A span that escapes the function
  (returned, stored on ``self``, passed along, captured by a closure)
  transfers the obligation to the new owner and is accepted.
* a local bound to ``BlockPrefetcher.run(...)`` / ``GatherPool.run(...)``
  (resolved through the call graph) must reach ``.close()`` or
  ``.cancel()`` on every path from the binding to function exit — a
  ``finally`` satisfies this because exceptional edges route through
  it — unless the stream escapes.
* a statement-level ``X.acquire()`` must be balanced by ``X.release()``
  on every path to exit (post-dominance on the CFG); use ``with X:``
  instead where possible.

The path check starts at the *normal* successors of the acquiring
statement: if the acquisition itself raises, the resource was never
created and no obligation exists.

Escape hatch: ``# leak-ok: <reason>`` on the acquiring line.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis.base import GraphChecker
from repro.analysis.checkers.locks import _expr_key
from repro.analysis.graph.cfg import CFG, EXCEPTION
from repro.analysis.graph.symbols import FunctionInfo

#: Project functions returning a stream that owns a worker thread.
_STREAM_FACTORIES = (
    "repro.storage.prefetch.BlockPrefetcher.run",
    "repro.storage.gatherpool.GatherPool.run",
)
_RELEASE_METHODS = ("close", "cancel")


def _exit_reachable_without(cfg: CFG, start_id: int, barrier: Set[int]) -> bool:
    """Can ``exit`` be reached from ``start_id``'s *normal* successors
    along paths that avoid every barrier node?"""
    stack = [
        dst
        for dst, kind in cfg.nodes[start_id].succs
        if kind != EXCEPTION
    ]
    seen: Set[int] = set()
    while stack:
        cur = stack.pop()
        if cur in seen or cur in barrier:
            continue
        if cur == cfg.exit:
            return True
        seen.add(cur)
        stack.extend(cfg.successors(cur))
    return False


def _stmt_calls_method_on(stmt: ast.stmt, owner_key: str, methods) -> bool:
    for node in ast.walk(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in methods
            and _expr_key(node.func.value) == owner_key
        ):
            return True
    return False


def _stmt_rebinds(stmt: ast.stmt, name: str) -> bool:
    if isinstance(stmt, ast.Assign):
        return any(
            isinstance(t, ast.Name) and t.id == name for t in stmt.targets
        )
    if isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        return isinstance(stmt.target, ast.Name) and stmt.target.id == name
    return False


class _EscapeScanner:
    """Does local ``name`` escape the function (new owner takes over)?"""

    _CONSUMING_BUILTINS = ("next", "list", "iter", "enumerate", "zip", "tuple")

    def __init__(self, fn_node: ast.AST, name: str) -> None:
        self.name = name
        self.escaped = False
        for stmt in getattr(fn_node, "body", []):
            self._walk(stmt, nested=False)
            if self.escaped:
                return

    def _walk(self, node: ast.AST, nested: bool) -> None:
        if self.escaped:
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A closure capturing the name owns it now (the gatherpool
            # consume() pattern: close lives in the nested generator).
            if any(
                isinstance(n, ast.Name) and n.id == self.name
                for n in ast.walk(node)
            ):
                self.escaped = True
            return
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = getattr(node, "value", None)
            if value is not None and self._mentions(value):
                self.escaped = True
                return
        if isinstance(node, ast.Assign):
            if self._mentions(node.value) and any(
                not (isinstance(t, ast.Name) and t.id == self.name)
                for t in node.targets
            ):
                self.escaped = True  # aliased or stored on an attribute
                return
        if isinstance(node, ast.Call):
            consuming = (
                isinstance(node.func, ast.Name)
                and node.func.id in self._CONSUMING_BUILTINS
            )
            if not consuming:
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if self._mentions(arg):
                        self.escaped = True
                        return
        for child in ast.iter_child_nodes(node):
            self._walk(child, nested)

    def _mentions(self, expr: ast.AST) -> bool:
        return any(
            isinstance(n, ast.Name) and n.id == self.name
            for n in ast.walk(expr)
        )


class ResourceLifecycleChecker(GraphChecker):
    rule_id = "GSD109"
    title = "spans, streams and bare locks must be released on every path"
    suppress_marker = "leak-ok"
    scope_dirs = ("core", "graph", "storage", "algorithms", "obs", "cluster", "tune")

    def visit_project(self, project) -> None:
        #: id(Call node) -> resolved callee fqn, for stream detection.
        resolved = {
            id(edge.node): edge.callee for edge in project.callgraph.edges
        }
        for fn in project.symbols.functions.values():
            if not self.applies_to(fn.rel):
                continue
            sf = project.source(fn.rel)
            if sf is None:
                continue
            self._check_spans(sf, fn)
            self._check_streams(project, sf, fn, resolved)
            self._check_acquire(project, sf, fn)

    # -- spans ---------------------------------------------------------------

    def _check_spans(self, sf, fn: FunctionInfo) -> None:
        with_items: List[ast.expr] = []
        with_names: Set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_items.append(item.context_expr)
                    if isinstance(item.context_expr, ast.Name):
                        with_names.add(item.context_expr.id)
        with_item_ids = {id(e) for e in with_items}

        for stmt in ast.walk(fn.node):
            if not isinstance(stmt, (ast.Expr, ast.Assign)):
                continue
            call = stmt.value
            if not (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == "span"
            ):
                continue
            if id(call) in with_item_ids:
                continue
            if isinstance(stmt, ast.Expr):
                self.report_at(
                    sf,
                    call,
                    "span created and dropped: it is never entered, so the "
                    "trace loses this phase (use 'with ...span(...):')",
                )
                continue
            # Assigned: fine when a with-item later names the local, or
            # when the span escapes to a new owner.
            names = [
                t.id for t in stmt.targets if isinstance(t, ast.Name)
            ]
            if not names:
                continue  # stored on an attribute: ownership transferred
            name = names[0]
            if name in with_names:
                continue
            if _EscapeScanner(fn.node, name).escaped:
                continue
            self.report_at(
                sf,
                call,
                f"span assigned to '{name}' but never entered on any path "
                "(no 'with' names it and it does not escape)",
            )

    # -- streams -------------------------------------------------------------

    def _check_streams(self, project, sf, fn: FunctionInfo, resolved) -> None:
        cfg = project.cfg_of(fn.fqn)
        if cfg is None:
            return
        for stmt in ast.walk(fn.node):
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            call = stmt.value
            if not isinstance(call, ast.Call):
                continue
            if resolved.get(id(call)) not in _STREAM_FACTORIES:
                continue
            name = target.id
            node_id = cfg.node_of_stmt.get(id(stmt))
            if node_id is None:
                # Inside a nested function: its body is opaque to this
                # CFG; re-check against the nested scope lexically.
                continue
            barrier = {
                n.id
                for n in cfg.nodes
                if n.stmt is not None
                and (
                    _stmt_calls_method_on(n.stmt, name, _RELEASE_METHODS)
                    or (n.id != node_id and _stmt_rebinds(n.stmt, name))
                )
            }
            if not _exit_reachable_without(cfg, node_id, barrier):
                continue
            if _EscapeScanner(fn.node, name).escaped:
                continue
            self.report_at(
                sf,
                call,
                f"stream '{name}' from {_short(resolved[id(call)])} can "
                "reach function exit without close()/cancel(): the worker "
                "thread leaks on that path (wrap in try/finally)",
            )

    # -- bare acquire --------------------------------------------------------

    def _check_acquire(self, project, sf, fn: FunctionInfo) -> None:
        cfg: Optional[CFG] = None
        for stmt in ast.walk(fn.node):
            if not isinstance(stmt, ast.Expr):
                continue
            call = stmt.value
            if not (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == "acquire"
            ):
                continue
            owner = _expr_key(call.func.value)
            if owner is None:
                continue
            if cfg is None:
                cfg = project.cfg_of(fn.fqn)
            if cfg is None:
                return
            node_id = cfg.node_of_stmt.get(id(stmt))
            if node_id is None:
                continue
            barrier = {
                n.id
                for n in cfg.nodes
                if n.stmt is not None
                and _stmt_calls_method_on(n.stmt, owner, ("release",))
            }
            if _exit_reachable_without(cfg, node_id, barrier):
                self.report_at(
                    sf,
                    call,
                    f"{owner}.acquire() is not balanced by "
                    f"{owner}.release() on every path to exit (exceptional "
                    "paths included) — prefer 'with', or release in a "
                    "finally",
                )


def _short(fqn: str) -> str:
    return fqn[len("repro."):] if fqn.startswith("repro.") else fqn


__all__ = ["ResourceLifecycleChecker"]
