"""GSD105 — exception hygiene.

A bare ``except:`` (or blanket ``except Exception`` /
``except BaseException``) that swallows is how storage faults turn into
silently wrong benchmark numbers: PR 1's whole design routes failures
either *up* (re-raise: crashes, checksum mismatches) or *into the
record* (IOStats counters, RunResult fault events). A blanket handler is
therefore only acceptable when it

* re-raises (a ``raise`` statement anywhere in the handler body), or
* visibly forwards the caught exception object (the bound name is used
  in the body — e.g. delivered through a queue, recorded to
  IOStats/RunResult, wrapped in a typed error), or
* carries ``# exception-ok: <reason>``.

Specific exception types are never flagged — the rule targets blanket
catches only.
"""

from __future__ import annotations

import ast

from repro.analysis.base import Checker
from repro.analysis.source import SourceFile

_BLANKET = ("Exception", "BaseException")


def _is_blanket(type_node: "ast.expr | None") -> bool:
    if type_node is None:  # bare except:
        return True
    if isinstance(type_node, ast.Name):
        return type_node.id in _BLANKET
    if isinstance(type_node, ast.Tuple):
        return any(_is_blanket(el) for el in type_node.elts)
    return False


class ExceptionHygieneChecker(Checker):
    rule_id = "GSD105"
    title = "blanket except must re-raise, forward, or record the failure"
    suppress_marker = "exception-ok"
    scope_dirs = ()

    def visit(self, sf: SourceFile) -> None:
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_blanket(node.type):
                continue
            if self._handler_is_honest(node):
                continue
            caught = (
                "bare except"
                if node.type is None
                else f"except {ast.unparse(node.type)}"
            )
            self.report(
                node,
                f"{caught} swallows the failure: re-raise, forward the "
                "exception object, or record it to IOStats/RunResult "
                "(see docs/ANALYSIS.md)",
            )

    def _handler_is_honest(self, handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if (
                handler.name is not None
                and isinstance(node, ast.Name)
                and node.id == handler.name
                and isinstance(node.ctx, ast.Load)
            ):
                return True
        return False
