"""GSD103 — lock-discipline race detector (Eraser-style lock sets).

Classes with real cross-thread state declare, on the field's assignment
line in ``__init__`` (or on a class-body annotation), which lock guards
it::

    self._components = {}  # guarded-by: _lock

From then on, *every* read or write of that field inside the class —
``self._components`` in a method, or ``other._components`` on another
instance — must sit lexically inside a ``with <owner>.<lock>:`` block
whose context expression names the same owner object and the declared
lock attribute. The rule is a static lock-set check: it cannot prove the
absence of every race, but it catches the common regression (a new
method touching shared state without taking the lock) at lint time
instead of as a once-a-month flaky test.

Conventions:

* ``__init__`` is exempt — construction happens-before publication to
  any other thread.
* Lock acquisition must be literal ``with owner.<lock>:`` — aliasing the
  lock through a local is not recognized (keep it simple, keep it
  checkable).
* Known-benign unguarded accesses carry ``# unguarded-ok: <reason>``.
* A helper whose *callers* take the lock declares its calling
  convention on the ``def`` line: ``# lock-held: _lock``. The scanner
  then seeds the method's lock set with ``(self, _lock)`` instead of
  flagging every access — and the whole-program rule GSD107 verifies
  that every call-graph path into the helper actually holds the lock.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.base import Checker
from repro.analysis.source import SourceFile


def _expr_key(node: ast.AST) -> Optional[str]:
    """A comparable identity for simple owner expressions (self, other,
    self.foo, ...); None for anything too dynamic to match."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _expr_key(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def lock_sets_at_calls(
    body: List[ast.stmt],
) -> Dict[int, FrozenSet[Tuple[str, str]]]:
    """``{id(Call node): lexically-held (owner, lock attr) pairs}``.

    Shared with the whole-program lock-context rule (GSD107): it asks,
    for each call site in a caller's body, which locks are held there.
    Nested functions and lambdas hold nothing (closures escape the
    lock's dynamic extent), matching :class:`_MethodScanner`.
    """
    result: Dict[int, FrozenSet[Tuple[str, str]]] = {}

    def walk(node: ast.AST, held: Tuple[Tuple[str, str], ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            for child in ast.iter_child_nodes(node):
                walk(child, ())
            return
        if isinstance(node, ast.Call):
            result[id(node)] = frozenset(held)
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = list(held)
            for item in node.items:
                ctx = item.context_expr
                if isinstance(ctx, ast.Attribute):
                    owner = _expr_key(ctx.value)
                    if owner is not None:
                        acquired.append((owner, ctx.attr))
                walk(ctx, tuple(held))
            inner = tuple(acquired)
            for stmt in node.body:
                walk(stmt, inner)
            return
        for child in ast.iter_child_nodes(node):
            walk(child, held)

    for stmt in body:
        walk(stmt, ())
    return result


class _MethodScanner(ast.NodeVisitor):
    """Walks one method body tracking the active set of held locks."""

    def __init__(
        self,
        checker: "LockDisciplineChecker",
        guarded: Dict[str, str],
        method_name: str,
        seed_held: Optional[List[Tuple[str, str]]] = None,
    ) -> None:
        self.checker = checker
        self.guarded = guarded
        self.method_name = method_name
        #: (owner key, lock attr) pairs currently held.
        self.held: List[Tuple[str, str]] = list(seed_held or [])

    def visit_With(self, node: ast.With) -> None:
        acquired: List[Tuple[str, str]] = []
        for item in node.items:
            ctx = item.context_expr
            if isinstance(ctx, ast.Attribute):
                owner = _expr_key(ctx.value)
                if owner is not None:
                    acquired.append((owner, ctx.attr))
        self.held.extend(acquired)
        self.generic_visit(node)
        for _ in acquired:
            self.held.pop()

    def visit_Attribute(self, node: ast.Attribute) -> None:
        field = node.attr
        lock = self.guarded.get(field)
        if lock is not None:
            owner = _expr_key(node.value)
            if owner is None or (owner, lock) not in self.held:
                self.checker.report(
                    node,
                    f"access to {owner or '<expr>'}.{field} in "
                    f"{self.method_name}() outside 'with "
                    f"{owner or '<owner>'}.{lock}:' (declared guarded-by "
                    f"{lock})",
                )
        self.generic_visit(node)

    # Nested functions/lambdas inherit the lexical lock set: a closure
    # defined inside `with self._lock:` typically *escapes* the lock's
    # dynamic extent (it runs later, on another thread), so treat the
    # nested body as holding nothing.
    def _visit_nested(self, node: ast.AST) -> None:
        outer = self.held
        self.held = []
        self.generic_visit(node)
        self.held = outer

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_nested(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_nested(node)


class LockDisciplineChecker(Checker):
    rule_id = "GSD103"
    title = "guarded-by fields must be accessed under their declared lock"
    suppress_marker = "unguarded-ok"
    scope_dirs = ()  # driven entirely by guarded-by declarations

    def visit(self, sf: SourceFile) -> None:
        declarations = sf.declarations("guarded-by")
        if not declarations:
            return
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.ClassDef):
                self._check_class(sf, node, declarations)

    # -- per-class ---------------------------------------------------------

    def _collect_guarded(
        self, cls: ast.ClassDef, declarations: Dict[int, str]
    ) -> Dict[str, str]:
        """``{field name: lock attr}`` declared in this class body."""
        guarded: Dict[str, str] = {}
        for stmt in ast.walk(cls):
            lock = declarations.get(getattr(stmt, "lineno", -1))
            if lock is None:
                continue
            targets: List[ast.AST] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Attribute) and isinstance(
                    target.value, ast.Name
                ):
                    guarded[target.attr] = lock.strip()
                elif isinstance(target, ast.Name):  # class-body declaration
                    guarded[target.id] = lock.strip()
        return guarded

    def _check_class(
        self, sf: SourceFile, cls: ast.ClassDef, declarations: Dict[int, str]
    ) -> None:
        guarded = self._collect_guarded(cls, declarations)
        if not guarded:
            return
        lock_held = sf.declarations("lock-held")
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name == "__init__":
                continue  # construction happens-before publication
            seed: List[Tuple[str, str]] = []
            decl = lock_held.get(stmt.lineno) or lock_held.get(stmt.lineno - 1)
            if decl is not None:
                # Callers hold the lock on *this* instance (GSD107
                # verifies them); the body may touch guarded state.
                seed.append(("self", decl.strip()))
            scanner = _MethodScanner(self, guarded, stmt.name, seed_held=seed)
            for inner in stmt.body:
                scanner.visit(inner)
