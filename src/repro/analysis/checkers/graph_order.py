"""GSD108 — iteration-order determinism in sim-deterministic scopes.

The bit-identity guarantees (pipelined==serial, cluster==single-node,
async==resumed) all reduce to: every float accumulation and every
charged I/O sequence must happen in the same order on every run. Two
iteration orders in Python are *not* stable across runs:

* **set iteration** is hash-ordered — for str keys it varies with
  ``PYTHONHASHSEED``;
* **dict iteration on shared attributes** follows insertion order, and
  insertion order on cross-thread state (a prefetch worker and a
  consumer both inserting keys) is a race. Local dicts are exempt:
  built and consumed in one frame, their insertion order is as
  deterministic as the code that filled them.

The rule fires when a *suspect iterable* feeds an *order-sensitive
consumer* inside the sim-deterministic directories:

Suspect iterables — set literals/comprehensions, ``set()`` /
``frozenset()`` calls, set-typed locals (all reaching definitions build
a set), set-typed parameters, set operators (``|  & - ^``) over suspect
operands, and ``.keys()/.values()/.items()`` (or direct iteration) on
dict-typed **attributes** of project classes.

Order-sensitive consumers — a ``for`` loop whose body accumulates
(``+=``/``-=``), appends/extends a sequence, or charges the clock;
``sum()``/``math.fsum()`` over the iterable; a list or dict
comprehension built from a *set* source (order-visible output /
insertion-ordered result — a comprehension over a dict merely
preserves the source's order and is not flagged).

Discharges — wrapping the iterable in ``sorted(...)``, or
``# order-ok: <reason>`` on the loop line when the order is provably
deterministic (e.g. single-threaded insertion) and must be preserved
for bit-compatibility with recorded baselines.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis.base import GraphChecker
from repro.analysis.graph.cfg import CFG
from repro.analysis.graph.dataflow import (
    ENTRY_DEF,
    assigned_value,
    reaching_definitions,
)
from repro.analysis.graph.symbols import (
    DICT_KIND,
    SET_KIND,
    FunctionInfo,
    annotation_container_kind,
    container_kind_of,
    param_containers,
    param_types,
)

_DICT_VIEWS = ("keys", "values", "items")
#: Loop-body calls that make iteration order observable.
_ORDER_SENSITIVE_METHODS = ("append", "extend", "charge", "read_block", "write_block")
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


class _FunctionContext:
    """Per-function typing context for iterable classification."""

    def __init__(self, project, fn: FunctionInfo) -> None:
        self.project = project
        self.table = project.symbols
        self.fn = fn
        self.param_kinds = param_containers(fn)
        self.param_types = param_types(self.table, fn)
        self.cfg: Optional[CFG] = project.cfg_of(fn.fqn)
        self._rds = None

    def reaching(self):
        if self._rds is None and self.cfg is not None:
            params = list(self.param_kinds) + list(self.param_types)
            self._rds = reaching_definitions(self.cfg, params=params)
        return self._rds

    # -- classification -----------------------------------------------------

    def iterable_kind(self, expr: ast.AST, at_stmt: Optional[ast.stmt]) -> Optional[str]:
        """SET/DICT kind of an iterable expression, or None (not suspect)."""
        # sorted(...) discharges; list(X)/tuple(X)/iter(X) preserve order.
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            if expr.func.id == "sorted":
                return None
            if expr.func.id in ("list", "tuple", "iter", "enumerate") and expr.args:
                return self.iterable_kind(expr.args[0], at_stmt)
        direct = container_kind_of(expr)
        if direct == SET_KIND:
            return SET_KIND
        if direct == DICT_KIND:
            return None  # a dict *literal* iterates in written order
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            if expr.func.attr in _DICT_VIEWS:
                recv_kind = self._receiver_dict_kind(expr.func.value, at_stmt)
                return DICT_KIND if recv_kind else None
            return None
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, _SET_OPS):
            left = self.iterable_kind(expr.left, at_stmt)
            right = self.iterable_kind(expr.right, at_stmt)
            if SET_KIND in (left, right):
                return SET_KIND
        if isinstance(expr, ast.Name):
            kind = self._name_kind(expr.id, at_stmt)
            return SET_KIND if kind == SET_KIND else None
        if isinstance(expr, ast.Attribute):
            kind = self._attr_kind(expr)
            # Direct iteration over a dict attribute == .keys().
            return kind if kind in (SET_KIND, DICT_KIND) else None
        return None

    def _receiver_dict_kind(
        self, recv: ast.AST, at_stmt: Optional[ast.stmt]
    ) -> bool:
        """Is ``recv`` a dict-typed shared attribute (or set — suspect too)?"""
        if isinstance(recv, ast.Attribute):
            return self._attr_kind(recv) in (DICT_KIND, SET_KIND)
        return False  # local dicts iterate in deterministic insertion order

    def _attr_kind(self, node: ast.Attribute) -> Optional[str]:
        owner: Optional[str] = None
        if isinstance(node.value, ast.Name):
            if node.value.id in ("self", "cls"):
                owner = self.fn.class_fqn
            else:
                owner = self.param_types.get(node.value.id)
        if owner is None:
            return None
        return self.table.attr_container(owner, node.attr)

    def _name_kind(self, name: str, at_stmt: Optional[ast.stmt]) -> Optional[str]:
        """Kind of a local/parameter, via reaching definitions when the
        statement maps to a CFG node, else all-assignments fallback."""
        param_kind = self.param_kinds.get(name)
        rds = self.reaching()
        node_id = (
            self.cfg.node_of_stmt.get(id(at_stmt))
            if self.cfg is not None and at_stmt is not None
            else None
        )
        values: List[ast.AST] = []
        if rds is not None and node_id is not None:
            defs = rds.get(node_id, {}).get(name)
            if not defs:
                return None
            for d in defs:
                if d == ENTRY_DEF:
                    if param_kind is None:
                        return None
                    continue
                stmt = self.cfg.nodes[d].stmt
                value = assigned_value(stmt, name) if stmt is not None else None
                if value is None:
                    return None  # loop target / unpacking: unknown
                values.append(value)
        else:
            for stmt in ast.walk(self.fn.node):
                if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    value = assigned_value(stmt, name)
                    if value is not None:
                        values.append(value)
            if not values and param_kind is None:
                return None
        kinds: Set[str] = set()
        if param_kind is not None and (not values or rds is None):
            kinds.add(param_kind)
        for value in values:
            if isinstance(value, ast.AST):
                k = container_kind_of(value) or annotation_container_kind(value)
                if k is None and isinstance(value, ast.BinOp):
                    k = SET_KIND if self.iterable_kind(value, None) else None
                if k is None:
                    return None  # one non-set definition: not suspect
                kinds.add(k)
        if param_kind is not None:
            kinds.add(param_kind)
        return SET_KIND if kinds == {SET_KIND} else None


def _loop_is_order_sensitive(loop: ast.For) -> bool:
    for stmt in loop.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _ORDER_SENSITIVE_METHODS
            ):
                return True
    return False


class IterationOrderChecker(GraphChecker):
    rule_id = "GSD108"
    title = "hash/race-ordered iteration must not feed accumulation or I/O"
    suppress_marker = "order-ok"
    # Unlike GSD101, ``utils`` is in scope: SimClock's accounting dicts
    # live there and are exactly the shared state this rule protects.
    scope_dirs = (
        "core", "graph", "storage", "algorithms", "obs", "cluster", "tune", "utils",
    )

    def visit_project(self, project) -> None:
        for fn in project.symbols.functions.values():
            if not self.applies_to(fn.rel):
                continue
            sf = project.source(fn.rel)
            if sf is None:
                continue
            ctx = _FunctionContext(project, fn)
            self._check_function(sf, ctx)

    def _check_function(self, sf, ctx: _FunctionContext) -> None:
        fn = ctx.fn
        #: innermost statement each expression belongs to (for CFG lookup).
        for stmt in fn.node.body:
            for owner_stmt, node in _walk_with_stmt(stmt):
                if isinstance(node, ast.For):
                    kind = ctx.iterable_kind(node.iter, owner_stmt)
                    if kind is not None and _loop_is_order_sensitive(node):
                        self.report_at(sf, node, self._msg(kind, "loop body accumulates / charges in iteration order"))
                elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and node.func.id in ("sum", "fsum"):
                    if node.args:
                        arg = node.args[0]
                        target = arg.generators[0].iter if isinstance(arg, ast.GeneratorExp) else arg
                        kind = ctx.iterable_kind(target, owner_stmt)
                        if kind is not None:
                            self.report_at(sf, node, self._msg(kind, "float summation order follows iteration order"))
                elif isinstance(node, (ast.ListComp, ast.DictComp)):
                    # Only hash-ordered (set) sources make a comprehension
                    # hazardous: a dict/list comp over a dict *preserves*
                    # the source's order — no new nondeterminism.
                    kind = ctx.iterable_kind(node.generators[0].iter, owner_stmt)
                    if kind == SET_KIND:
                        what = (
                            "list output is order-visible"
                            if isinstance(node, ast.ListComp)
                            else "result dict insertion order follows iteration order"
                        )
                        self.report_at(sf, node, self._msg(kind, what))

    @staticmethod
    def _msg(kind: str, consequence: str) -> str:
        source = (
            "set iteration is hash-ordered (varies with PYTHONHASHSEED)"
            if kind == SET_KIND
            else "shared dict attribute: insertion order can race across threads"
        )
        return (
            f"{source} and {consequence}; iterate sorted(...) or annotate "
            "'# order-ok: <why the order is deterministic>'"
        )


def _walk_with_stmt(stmt: ast.stmt):
    """Yield ``(enclosing statement, node)`` pairs, tracking the innermost
    statement so CFG/reaching-defs lookups land on the right node. Nested
    function bodies are walked too (their loops still run in sim scope)."""
    yield stmt, stmt
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.stmt):
            yield from _walk_with_stmt(child)
        else:
            for owner, node in _walk_expr(stmt, child):
                yield owner, node


def _walk_expr(owner: ast.stmt, expr: ast.AST):
    yield owner, expr
    for child in ast.iter_child_nodes(expr):
        if isinstance(child, ast.stmt):
            yield from _walk_with_stmt(child)
        else:
            yield from _walk_expr(owner, child)


__all__ = ["IterationOrderChecker"]
