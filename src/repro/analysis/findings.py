"""Findings: what a checker reports, with stable identities for baselining.

A :class:`Finding` pins one rule violation to a file and line. Its
:attr:`~Finding.key` deliberately excludes the line *number*: baselines
must survive unrelated edits above a grandfathered line, so the identity
is ``rule_id : path : stripped source line``. Two byte-identical
violating lines in one file therefore share a key — acceptable for the
intended near-empty baselines, and called out in ``docs/ANALYSIS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

#: Severity labels, ordered from most to least severe.
ERROR = "error"
WARNING = "warning"
SEVERITIES = (ERROR, WARNING)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule_id: str
    severity: str
    path: str  # package-relative posix path, e.g. "storage/prefetch.py"
    line: int  # 1-based
    col: int  # 0-based, matching ast's col_offset
    message: str
    context: str = ""  # the stripped source line, for stable identity

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def key(self) -> str:
        """Stable baseline identity (line-number independent)."""
        return f"{self.rule_id}:{self.path}:{self.context}"

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity} {self.rule_id}: {self.message}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "context": self.context,
        }
