"""Parsed source files and the annotation-comment grammar.

Annotation grammar (one annotation per line, trailing comment)::

    # <marker>: <reason>

Two families exist:

* **Escape hatches** (``sim-ok``, ``charged-io-ok``, ``dtype-ok``,
  ``exception-ok``, ``unguarded-ok``, ``order-ok``, ``leak-ok``):
  suppress one rule's finding on the annotated line, or — for statements
  whose comment would not fit — on the line immediately below the
  annotation. The reason is mandatory; an empty reason is itself
  reported (rule ``GSD100``).
* **Declarations** (``guarded-by``, ``lock-held``): not suppressions.
  ``guarded-by`` declares that the field assigned on this line may only
  be accessed while holding the named lock attribute (see the
  lock-discipline checker). ``lock-held`` sits on a ``def`` line and
  declares the function's calling convention: callers must already hold
  ``self.<lock>`` — the lexical checker seeds the lock set from it and
  the whole-program checker verifies every call site (GSD107).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.findings import ERROR, Finding

#: Marker names recognized by the annotation grammar.
ESCAPE_MARKERS = (
    "sim-ok",
    "charged-io-ok",
    "dtype-ok",
    "exception-ok",
    "unguarded-ok",
    "order-ok",
    "leak-ok",
)
DECLARATION_MARKERS = ("guarded-by", "lock-held")

_MARKER_RE = re.compile(
    r"#\s*(" + "|".join(ESCAPE_MARKERS + DECLARATION_MARKERS) + r")\s*:\s*(.*)$"
)

#: Rule id for malformed annotations (reason missing).
RULE_BAD_ANNOTATION = "GSD100"


class SourceFile:
    """One parsed Python file plus its annotation markers.

    ``rel`` is the path the file is reported (and scoped) under —
    package-relative for real repository files, arbitrary for fixtures.
    """

    def __init__(self, rel: str, text: str, path: Optional[Path] = None) -> None:
        self.rel = rel.replace("\\", "/")
        self.path = path
        self.text = text
        self.lines: List[str] = text.splitlines()
        self.tree = ast.parse(text, filename=self.rel)
        #: marker name -> {line number (1-based) -> reason}
        self.markers: Dict[str, Dict[int, str]] = {}
        #: (line, marker) pairs whose reason was empty.
        self.bad_annotations: List[Tuple[int, str]] = []
        for lineno, line in enumerate(self.lines, start=1):
            m = _MARKER_RE.search(line)
            if m is None:
                continue
            marker, reason = m.group(1), m.group(2).strip()
            if not reason:
                self.bad_annotations.append((lineno, marker))
                continue
            self.markers.setdefault(marker, {})[lineno] = reason

    @classmethod
    def from_path(cls, path: Path, rel: str) -> "SourceFile":
        return cls(rel, path.read_text(), path=path)

    # -- suppression -------------------------------------------------------

    def suppressed(self, marker: str, line: int) -> bool:
        """Is a finding on ``line`` suppressed by ``marker``?

        The annotation may sit on the finding's own line or on the line
        directly above it (comment-above style for long statements).
        """
        table = self.markers.get(marker, {})
        return line in table or (line - 1) in table

    def declarations(self, marker: str) -> Dict[int, str]:
        """All ``marker`` declarations as ``{line: value}``."""
        return dict(self.markers.get(marker, {}))

    # -- helpers for checkers ----------------------------------------------

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def annotation_findings(self) -> List[Finding]:
        """``GSD100`` findings for annotations missing their reason."""
        return [
            Finding(
                rule_id=RULE_BAD_ANNOTATION,
                severity=ERROR,
                path=self.rel,
                line=line,
                col=0,
                message=(
                    f"annotation '# {marker}:' requires a reason "
                    "(see docs/ANALYSIS.md)"
                ),
                context=self.line_text(line),
            )
            for line, marker in self.bad_annotations
        ]
