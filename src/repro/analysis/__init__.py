"""Project-invariant static analysis (``graphsd lint``).

The engine's correctness rests on invariants no general-purpose linter
knows about: every byte charged to the :class:`~repro.utils.timers.SimClock`,
no wall-clock or ad-hoc randomness on simulated paths, shared prefetcher
state only under its lock, explicit dtypes on hot paths, and no
swallowed failures. This package is a small AST-checker framework plus
one checker per invariant; see ``docs/ANALYSIS.md`` for the rule
catalogue and annotation grammar.

Since PR 9 the framework has two layers: per-file syntactic rules, and
whole-program rules that run over :mod:`repro.analysis.graph` — a
project-wide symbol table, call graph (unresolvable calls recorded as
explicit open edges) and per-function CFGs with reaching definitions.
"""

from repro.analysis.base import Checker, GraphChecker
from repro.analysis.checkers import ALL_CHECKERS
from repro.analysis.findings import Finding
from repro.analysis.runner import (
    LintResult,
    check_text,
    check_texts,
    collect_sources,
    default_baseline_path,
    load_baseline,
    package_root,
    run_lint,
    write_baseline,
)
from repro.analysis.source import SourceFile

__all__ = [
    "ALL_CHECKERS",
    "Checker",
    "Finding",
    "GraphChecker",
    "LintResult",
    "SourceFile",
    "check_text",
    "check_texts",
    "collect_sources",
    "default_baseline_path",
    "load_baseline",
    "package_root",
    "run_lint",
    "write_baseline",
]
