"""SARIF 2.1.0 output for ``graphsd lint --format sarif``.

One run, one tool (``graphsd``), one rule descriptor per checker. Each
result carries a ``partialFingerprints`` entry derived from the
finding's :attr:`~repro.analysis.findings.Finding.key` — rule id, path
and the *stripped source line*, never the line number — so code-scanning
UIs keep alert identity stable across rebases and unrelated edits that
shift line numbers.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Sequence, Type

from repro.analysis.base import Checker
from repro.analysis.findings import ERROR, Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Finding severity -> SARIF result level.
_LEVELS = {ERROR: "error", "warning": "warning", "note": "note"}


def _fingerprint(finding: Finding) -> str:
    """Stable, line-number-independent identity for one finding."""
    return hashlib.sha256(finding.key.encode()).hexdigest()[:32]


def _rule_descriptor(cls: Type[Checker]) -> Dict[str, object]:
    return {
        "id": cls.rule_id,
        "name": cls.__name__,
        "shortDescription": {"text": cls.title},
        "properties": {
            "family": cls.family,
            "suppressMarker": cls.suppress_marker or "",
        },
    }


def _result(finding: Finding, baselined: bool) -> Dict[str, object]:
    return {
        "ruleId": finding.rule_id,
        "level": _LEVELS.get(finding.severity, "error"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f"src/repro/{finding.path}",
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": max(1, finding.col + 1),
                        "snippet": {"text": finding.context},
                    },
                }
            }
        ],
        "partialFingerprints": {"graphsdFindingKey/v1": _fingerprint(finding)},
        "baselineState": "unchanged" if baselined else "new",
    }


def to_sarif(
    findings: Sequence[Finding],
    new_findings: Sequence[Finding],
    checkers: Sequence[Type[Checker]],
) -> Dict[str, object]:
    """The SARIF log object for one lint run."""
    new = set(new_findings)
    rules: List[Dict[str, object]] = [
        _rule_descriptor(cls)
        for cls in sorted(checkers, key=lambda c: c.rule_id)
        if cls.rule_id
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "graphsd",
                        "informationUri": "docs/ANALYSIS.md",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"description": {"text": "repository root"}}
                },
                "results": [_result(f, f not in new) for f in findings],
            }
        ],
    }


def render_sarif(
    findings: Sequence[Finding],
    new_findings: Sequence[Finding],
    checkers: Sequence[Type[Checker]],
) -> str:
    return json.dumps(to_sarif(findings, new_findings, checkers), indent=2) + "\n"


__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "render_sarif", "to_sarif"]
