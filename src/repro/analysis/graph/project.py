"""The assembled whole-program view, with a content-hash pickle cache.

:class:`ProjectGraph` ties the passes together: parsed sources → symbol
table → call graph, plus lazily-built per-function CFGs. Construction
is pure (a function of the source bytes alone), so the pickled graph is
cached keyed by a hash over every ``(path, content)`` pair — any edit
anywhere invalidates the key. ``graphsd lint --graph-cache DIR`` (and
the CI lint job) reuse the cache; ``--changed`` runs lint a subset of
files against the same shared graph.

CFGs are *not* pickled: their statement-to-node maps key off AST object
identity, which does not survive a pickle round-trip. They rebuild
lazily against whichever AST objects the graph currently holds.
"""

from __future__ import annotations

import hashlib
import pickle
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.analysis.graph.callgraph import CallGraph, build_call_graph
from repro.analysis.graph.cfg import CFG, build_cfg
from repro.analysis.graph.symbols import (
    FunctionInfo,
    SymbolTable,
    build_symbol_table,
)
from repro.analysis.source import SourceFile

#: Bump when the graph layout changes; part of the cache key.
GRAPH_FORMAT_VERSION = 1


class ProjectGraph:
    """Symbols + call graph + on-demand CFGs over one set of sources."""

    def __init__(self, sources: List[SourceFile]) -> None:
        self.sources: Dict[str, SourceFile] = {sf.rel: sf for sf in sources}
        self.symbols: SymbolTable = build_symbol_table(sources)
        self.callgraph: CallGraph = build_call_graph(self.symbols)
        self._cfgs: Dict[str, CFG] = {}

    # -- pickling ----------------------------------------------------------

    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        state["_cfgs"] = {}  # id()-keyed maps do not survive unpickling
        return state

    # -- accessors ---------------------------------------------------------

    def source(self, rel: str) -> Optional[SourceFile]:
        return self.sources.get(rel)

    def functions(self) -> Iterable[FunctionInfo]:
        return self.symbols.functions.values()

    def cfg_of(self, fqn: str) -> Optional[CFG]:
        """The function's CFG, built on first use."""
        if fqn not in self._cfgs:
            fn = self.symbols.functions.get(fqn)
            if fn is None:
                return None
            self._cfgs[fqn] = build_cfg(fn.node)
        return self._cfgs[fqn]

    # -- reporting ---------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "modules": len(self.symbols.modules),
            "classes": len(self.symbols.classes),
            "functions": len(self.symbols.functions),
            "call_edges": len(self.callgraph.edges),
            "open_edges": len(self.callgraph.open_edges),
            "value_refs": len(self.callgraph.refs),
        }

    def debug_render(self, max_open: int = 40) -> str:
        """Human-readable summary for ``graphsd lint --graph-debug``."""
        lines = ["project graph:"]
        for key, value in self.stats().items():
            lines.append(f"  {key}: {value}")
        seen = set()
        shown = 0
        lines.append(f"open edges (first {max_open} distinct):")
        for oe in self.callgraph.open_edges:
            key = (oe.caller, oe.expr, oe.reason)
            if key in seen:
                continue
            seen.add(key)
            lines.append(f"  {oe.caller}:{oe.lineno} -> {oe.expr} [{oe.reason}]")
            shown += 1
            if shown >= max_open:
                lines.append(f"  ... {len(self.callgraph.open_edges)} total")
                break
        return "\n".join(lines)


def sources_key(sources: List[SourceFile]) -> str:
    """Content hash over every ``(rel, text)`` pair, order-independent."""
    h = hashlib.sha256()
    h.update(f"v{GRAPH_FORMAT_VERSION}".encode())
    for sf in sorted(sources, key=lambda s: s.rel):
        h.update(sf.rel.encode())
        h.update(b"\0")
        h.update(sf.text.encode())
        h.update(b"\0")
    return h.hexdigest()


def build_project_graph(
    sources: List[SourceFile], cache_dir: Optional[Path] = None
) -> ProjectGraph:
    """Build (or load from ``cache_dir``) the project graph.

    A corrupt or unreadable cache entry is ignored and rebuilt — the
    cache is an accelerator, never a correctness dependency.
    """
    if cache_dir is None:
        return ProjectGraph(sources)
    cache_dir = Path(cache_dir)
    key = sources_key(sources)
    path = cache_dir / f"project-graph-{key[:24]}.pkl"
    if path.exists():
        try:
            # charged-io-ok: host-side analysis cache, not simulated graph I/O
            with open(path, "rb") as f:
                graph = pickle.load(f)
            if isinstance(graph, ProjectGraph):
                return graph
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            pass  # stale/corrupt cache: rebuild below
    graph = ProjectGraph(sources)
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        # charged-io-ok: host-side analysis cache, not simulated graph I/O
        with open(tmp, "wb") as f:
            pickle.dump(graph, f)
        tmp.replace(path)
    except OSError:
        pass  # read-only checkout: run uncached
    return graph


__all__ = [
    "GRAPH_FORMAT_VERSION",
    "ProjectGraph",
    "build_project_graph",
    "sources_key",
]
