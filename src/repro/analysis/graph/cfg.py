"""Per-function control-flow graphs at statement granularity.

One :class:`CFGNode` per simple statement plus synthetic ``entry``,
``exit`` (normal return) and ``raise_exit`` (unhandled exception)
nodes. Structured statements contribute their header as a node and
their bodies recursively:

* ``if`` — header branches to both arms, arms join after.
* ``while``/``for`` — header branches into the body and past the loop;
  the body's tail has a **back edge** to the header; ``break`` jumps to
  the loop exit, ``continue`` to the header; a loop ``else`` runs on
  normal exhaustion.
* ``try`` — every *can-raise* statement in the body has an exceptional
  edge to each handler entry (and to ``finally`` when present); handler
  and ``else`` bodies route through ``finally``; ``finally`` completes
  to the statement after the ``try`` **and** to ``raise_exit`` (it may
  be finishing an in-flight exception).
* a statement outside any ``try`` that can raise (contains a call) has
  an exceptional edge straight to ``raise_exit``.

``raise_exit`` is wired to ``exit`` so post-dominance is computed over
a single exit; the resource-lifecycle rule distinguishes the two when
explaining a leak. *Can raise* is approximated as "contains a Call or
Raise" — attribute access and arithmetic can raise in principle, but
the approximation keeps exceptional edges where leaks actually happen
without drowning the graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

#: Edge kinds (informational; traversals treat them alike unless noted).
NORMAL = "normal"
TRUE = "true"
FALSE = "false"
BACK = "back"
EXCEPTION = "exception"


@dataclass
class CFGNode:
    id: int
    stmt: Optional[ast.stmt]  # None for synthetic nodes
    label: str
    succs: List[Tuple[int, str]] = field(default_factory=list)
    preds: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def lineno(self) -> int:
        return getattr(self.stmt, "lineno", 0)


class CFG:
    """Control-flow graph of one function body."""

    def __init__(self) -> None:
        self.nodes: List[CFGNode] = []
        self.entry = self._new(None, "<entry>").id
        self.exit = self._new(None, "<exit>").id
        self.raise_exit = self._new(None, "<raise-exit>").id
        #: ast statement id() -> node id (same process as the build).
        self.node_of_stmt: Dict[int, int] = {}
        self._edge(self.raise_exit, self.exit, NORMAL)

    # -- construction helpers ----------------------------------------------

    def _new(self, stmt: Optional[ast.stmt], label: str) -> CFGNode:
        node = CFGNode(id=len(self.nodes), stmt=stmt, label=label)
        self.nodes.append(node)
        return node

    def _edge(self, src: int, dst: int, kind: str) -> None:
        if (dst, kind) not in self.nodes[src].succs:
            self.nodes[src].succs.append((dst, kind))
            self.nodes[dst].preds.append((src, kind))

    # -- queries -----------------------------------------------------------

    def successors(self, nid: int) -> List[int]:
        return [dst for dst, _ in self.nodes[nid].succs]

    def predecessors(self, nid: int) -> List[int]:
        return [src for src, _ in self.nodes[nid].preds]

    def reachable_without(
        self, start: int, barrier: Set[int]
    ) -> Set[int]:
        """Nodes reachable from ``start`` along paths avoiding ``barrier``.

        ``start`` itself is expanded even if in ``barrier`` (the barrier
        blocks *passing through*, not leaving).
        """
        seen: Set[int] = set()
        stack = [dst for dst, _ in self.nodes[start].succs]
        while stack:
            cur = stack.pop()
            if cur in seen or cur in barrier:
                continue
            seen.add(cur)
            stack.extend(self.successors(cur))
        return seen

    def postdominators(self) -> Dict[int, Set[int]]:
        """``{node: set of its post-dominators}`` (node included)."""
        return _dominators(self, self.exit, reverse=True)

    def dominators(self) -> Dict[int, Set[int]]:
        """``{node: set of its dominators}`` (node included)."""
        return _dominators(self, self.entry, reverse=False)


def _dominators(cfg: CFG, root: int, reverse: bool) -> Dict[int, Set[int]]:
    ids = [n.id for n in cfg.nodes]
    preds = cfg.successors if reverse else cfg.predecessors
    dom: Dict[int, Set[int]] = {n: set(ids) for n in ids}
    dom[root] = {root}
    changed = True
    while changed:
        changed = False
        for n in ids:
            if n == root:
                continue
            ps = preds(n)
            if ps:
                new = set.intersection(*(dom[p] for p in ps)) | {n}
            else:
                new = {n}
            if new != dom[n]:
                dom[n] = new
                changed = True
    return dom


def _can_raise(stmt: ast.stmt) -> bool:
    for node in ast.walk(stmt):
        if isinstance(node, (ast.Call, ast.Raise, ast.Assert)):
            return True
    return False


class _Builder:
    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        #: innermost-first (handler targets, finally target) for try scopes.
        self.exc_targets: List[List[int]] = []
        #: (loop header, loop exit join) for break/continue.
        self.loops: List[Tuple[int, int]] = []

    # frontier: node ids whose normal successor is the next statement.

    def build(self, body: List[ast.stmt]) -> None:
        frontier = self.seq(body, [self.cfg.entry])
        for nid in frontier:
            self.cfg._edge(nid, self.cfg.exit, NORMAL)

    def seq(self, body: Iterable[ast.stmt], frontier: List[int]) -> List[int]:
        for stmt in body:
            frontier = self.stmt(stmt, frontier)
        return frontier

    def _link(self, frontier: List[int], nid: int, kind: str = NORMAL) -> None:
        for src in frontier:
            self.cfg._edge(src, nid, kind)

    def _exceptional(self, nid: int) -> None:
        """Wire an exceptional edge for a can-raise node."""
        if self.exc_targets:
            for target in self.exc_targets[-1]:
                self.cfg._edge(nid, target, EXCEPTION)
        else:
            self.cfg._edge(nid, self.cfg.raise_exit, EXCEPTION)

    def stmt(self, stmt: ast.stmt, frontier: List[int]) -> List[int]:
        cfg = self.cfg
        node = cfg._new(stmt, type(stmt).__name__)
        cfg.node_of_stmt[id(stmt)] = node.id
        self._link(frontier, node.id)
        if _can_raise(stmt) or isinstance(stmt, (ast.Try, ast.With, ast.AsyncWith)):
            self._exceptional(node.id)

        if isinstance(stmt, ast.If):
            then_out = self.seq(stmt.body, [node.id])
            else_out = self.seq(stmt.orelse, [node.id]) if stmt.orelse else [node.id]
            return then_out + else_out

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            join = cfg._new(None, "<loop-exit>")
            self.loops.append((node.id, join.id))
            body_out = self.seq(stmt.body, [node.id])
            for nid in body_out:
                cfg._edge(nid, node.id, BACK)
            self.loops.pop()
            if stmt.orelse:
                else_out = self.seq(stmt.orelse, [node.id])
                self._link(else_out, join.id)
            else:
                cfg._edge(node.id, join.id, FALSE)
            return [join.id]

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self.seq(stmt.body, [node.id])

        if isinstance(stmt, ast.Try):
            return self._try(stmt, node.id)

        if isinstance(stmt, ast.Return):
            cfg._edge(node.id, cfg.exit, NORMAL)
            return []
        if isinstance(stmt, ast.Raise):
            self._exceptional(node.id)
            return []
        if isinstance(stmt, ast.Break):
            if self.loops:
                cfg._edge(node.id, self.loops[-1][1], NORMAL)
            return []
        if isinstance(stmt, ast.Continue):
            if self.loops:
                cfg._edge(node.id, self.loops[-1][0], BACK)
            return []

        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return [node.id]  # nested definitions: opaque single nodes

        return [node.id]

    def _try(self, stmt: ast.Try, try_node: int) -> List[int]:
        cfg = self.cfg
        handler_entries: List[int] = []
        handler_nodes: List[ast.ExceptHandler] = list(stmt.handlers)
        finally_entry: Optional[int] = None
        if stmt.finalbody:
            finally_entry = cfg._new(None, "<finally>").id

        # Pre-create handler header nodes so body statements can target them.
        headers: List[int] = []
        for handler in handler_nodes:
            h = cfg._new(None, f"<except {ast.unparse(handler.type) if handler.type else ''}>")
            cfg.node_of_stmt[id(handler)] = h.id
            headers.append(h.id)
        targets = list(headers)
        if finally_entry is not None:
            targets.append(finally_entry)

        self.exc_targets.append(targets)
        body_out = self.seq(stmt.body, [try_node])
        self.exc_targets.pop()

        else_out = self.seq(stmt.orelse, body_out) if stmt.orelse else body_out

        after: List[int] = []
        handler_tails: List[int] = []
        for handler, header in zip(handler_nodes, headers):
            # A raise inside a handler escapes to the finally (or out).
            if finally_entry is not None:
                self.exc_targets.append([finally_entry])
            tail = self.seq(handler.body, [header])
            if finally_entry is not None:
                self.exc_targets.pop()
            handler_tails.extend(tail)

        if finally_entry is not None:
            self._link(else_out + handler_tails, finally_entry)
            fin_out = self.seq(stmt.finalbody, [finally_entry])
            # The finally may be completing an in-flight exception.
            for nid in fin_out:
                self._exceptional_at(nid)
            after = fin_out
        else:
            after = else_out + handler_tails
        return after

    def _exceptional_at(self, nid: int) -> None:
        if len(self.exc_targets) > 0:
            for target in self.exc_targets[-1]:
                self.cfg._edge(nid, target, EXCEPTION)
        else:
            self.cfg._edge(nid, self.cfg.raise_exit, EXCEPTION)


def build_cfg(fn_node: ast.AST) -> CFG:
    """CFG for a FunctionDef/AsyncFunctionDef (or any statement list)."""
    cfg = CFG()
    body = getattr(fn_node, "body", fn_node)
    _Builder(cfg).build(list(body))
    return cfg


__all__ = [
    "BACK",
    "CFG",
    "CFGNode",
    "EXCEPTION",
    "FALSE",
    "NORMAL",
    "TRUE",
    "build_cfg",
]
