"""Dataflow over the CFG: reaching definitions and value lookup.

Classic forward may-analysis at statement granularity: a definition of
``x`` at node *d* reaches node *n* when some CFG path from *d* to *n*
has no intervening redefinition. The determinism rule uses it to type a
loop's iterable (*all* reaching definitions build a set → iterating it
is hash-ordered); the tests exercise try/finally, early returns and
loop back-edges directly.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.graph.cfg import CFG

#: Synthetic definition site for parameters (reaching from function entry).
ENTRY_DEF = -1


def defined_names(stmt: ast.stmt) -> List[str]:
    """Names (re)bound by one statement, outermost targets only."""
    out: List[str] = []

    def target_names(node: ast.AST) -> None:
        if isinstance(node, ast.Name):
            out.append(node.id)
        elif isinstance(node, (ast.Tuple, ast.List)):
            for el in node.elts:
                target_names(el)
        elif isinstance(node, ast.Starred):
            target_names(node.value)

    if isinstance(stmt, ast.Assign):
        for t in stmt.targets:
            target_names(t)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        target_names(stmt.target)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        target_names(stmt.target)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                target_names(item.optional_vars)
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            out.append(alias.asname or alias.name.split(".")[0])
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        out.append(stmt.name)
    # Walrus assignments anywhere inside the statement.
    for node in ast.walk(stmt):
        if isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
            out.append(node.target.id)
    return out


def reaching_definitions(
    cfg: CFG, params: Optional[List[str]] = None
) -> Dict[int, Dict[str, Set[int]]]:
    """``{node id: {name: definition node ids reaching its entry}}``.

    ``params`` seed the entry node with :data:`ENTRY_DEF` definitions.
    """
    gen: Dict[int, Dict[str, int]] = {}
    for node in cfg.nodes:
        if node.stmt is not None:
            gen[node.id] = {name: node.id for name in defined_names(node.stmt)}
        else:
            gen[node.id] = {}

    in_sets: Dict[int, Dict[str, Set[int]]] = {n.id: {} for n in cfg.nodes}
    in_sets[cfg.entry] = {p: {ENTRY_DEF} for p in (params or [])}

    def out_set(nid: int) -> Dict[str, Set[int]]:
        result = {k: set(v) for k, v in in_sets[nid].items()}
        for name, d in gen[nid].items():
            result[name] = {d}
        return result

    changed = True
    while changed:
        changed = False
        for node in cfg.nodes:
            if node.id == cfg.entry:
                continue
            merged: Dict[str, Set[int]] = {}
            for pred in cfg.predecessors(node.id):
                for name, defs in out_set(pred).items():
                    merged.setdefault(name, set()).update(defs)
            if merged != in_sets[node.id]:
                in_sets[node.id] = merged
                changed = True
    return in_sets


def assigned_value(stmt: ast.stmt, name: str) -> Optional[ast.AST]:
    """The expression assigned to ``name`` by ``stmt``, when simple.

    Tuple unpacking, loop targets and ``with ... as`` bindings return
    None — their element values are not statically separable.
    """
    if isinstance(stmt, ast.Assign):
        for t in stmt.targets:
            if isinstance(t, ast.Name) and t.id == name:
                return stmt.value
    elif isinstance(stmt, ast.AnnAssign):
        if isinstance(stmt.target, ast.Name) and stmt.target.id == name:
            return stmt.value if stmt.value is not None else stmt.annotation
    for node in ast.walk(stmt):
        if (
            isinstance(node, ast.NamedExpr)
            and isinstance(node.target, ast.Name)
            and node.target.id == name
        ):
            return node.value
    return None


__all__ = ["ENTRY_DEF", "assigned_value", "defined_names", "reaching_definitions"]
