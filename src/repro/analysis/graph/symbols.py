"""Project symbol table: modules, classes, functions, import bindings.

Every entity gets a fully-qualified name (FQN) rooted at the package
name (``repro.core.sciu.run_sciu_round``,
``repro.storage.prefetch.BlockPrefetcher._bump``). Import bindings are
recorded per module and chased through re-exporting ``__init__``
modules, so ``from repro.storage import Device`` resolves to the class's
defining module. Names bound to modules outside the project resolve to
``ext:<module>`` markers — downstream passes treat calls through them as
open edges rather than guessing.

Attribute-type inference is deliberately shallow and explicit: a
``self.x = ClassName(...)`` assignment (any method), a ``self.x: T``
annotation, or a class-body ``x: T`` annotation gives attribute ``x``
the project class ``T`` when the name resolves; everything else has no
type. The call-graph builder only dispatches through *known* types and
records the rest as open edges, so shallow inference degrades to
explicit uncertainty, never to wrong edges.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.source import SourceFile

#: Root package name all FQNs hang off.
PACKAGE = "repro"

#: Container kinds tracked for the iteration-order rule.
SET_KIND = "set"
DICT_KIND = "dict"


def module_name_of(rel: str) -> str:
    """Dotted module name for a package-relative path.

    ``core/sciu.py`` -> ``repro.core.sciu``; ``storage/__init__.py`` ->
    ``repro.storage``; a bare ``fixture.py`` -> ``repro.fixture``.
    """
    parts = rel[:-3].split("/") if rel.endswith(".py") else rel.split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([PACKAGE] + [p for p in parts if p])


@dataclass
class FunctionInfo:
    """One function or method definition."""

    fqn: str
    name: str
    rel: str  # source file, package-relative
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_fqn: Optional[str] = None  # owning class, None for module-level

    @property
    def is_method(self) -> bool:
        return self.class_fqn is not None

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 1)


@dataclass
class ClassInfo:
    """One class definition with its immediate bases and attribute types."""

    fqn: str
    name: str
    rel: str
    node: ast.ClassDef
    base_exprs: List[str] = field(default_factory=list)  # as written
    methods: Dict[str, str] = field(default_factory=dict)  # name -> fqn
    attr_types: Dict[str, str] = field(default_factory=dict)  # attr -> class fqn
    attr_containers: Dict[str, str] = field(default_factory=dict)  # attr -> kind


@dataclass
class ModuleInfo:
    """One parsed module: its bindings and top-level definitions."""

    rel: str
    name: str  # dotted module name
    sf: SourceFile
    bindings: Dict[str, str] = field(default_factory=dict)  # local name -> FQN/ext
    functions: Dict[str, str] = field(default_factory=dict)  # local name -> fqn
    classes: Dict[str, str] = field(default_factory=dict)  # local name -> fqn


class SymbolTable:
    """All modules, classes and functions of the project, by FQN."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}  # dotted name -> info
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}

    # -- resolution --------------------------------------------------------

    def resolve(self, fqn: str) -> Optional[str]:
        """Canonical FQN for ``fqn``, chasing re-export chains.

        ``repro.storage.Device`` (bound in the package ``__init__``)
        resolves to ``repro.storage.blockfile.Device``. Returns None for
        names that never land on a project definition.
        """
        seen = set()
        while fqn not in self.functions and fqn not in self.classes:
            if fqn in seen or fqn.startswith("ext:"):
                return None
            seen.add(fqn)
            mod, _, leaf = fqn.rpartition(".")
            info = self.modules.get(mod)
            if info is None or leaf not in info.bindings:
                return None
            fqn = info.bindings[leaf]
        return fqn

    def resolve_in_module(self, module: str, dotted: str) -> Optional[str]:
        """Resolve a dotted name as used inside ``module``'s code.

        The head segment is looked up in the module's bindings (imports,
        local defs); the remaining segments are appended and the result
        chased through :meth:`resolve`. ``np.zeros`` under ``import
        numpy as np`` returns None (external).
        """
        info = self.modules.get(module)
        if info is None:
            return None
        head, _, rest = dotted.partition(".")
        target = info.bindings.get(head)
        if target is None or target.startswith("ext:"):
            return None
        full = f"{target}.{rest}" if rest else target
        resolved = self.resolve(full)
        if resolved is not None:
            return resolved
        # The head may be a module object (``import repro.core.sciu``):
        # try the longest module-name prefix of the dotted path.
        if full in self.modules:
            return full
        return None

    def mro(self, class_fqn: str) -> List[ClassInfo]:
        """The class and its project base classes, depth-first.

        External bases are skipped (their methods are unknowable
        statically); cycles are tolerated.
        """
        out: List[ClassInfo] = []
        seen = set()

        def visit(fqn: str) -> None:
            if fqn in seen:
                return
            seen.add(fqn)
            info = self.classes.get(fqn)
            if info is None:
                return
            out.append(info)
            module = module_name_of(info.rel)
            for base in info.base_exprs:
                resolved = self.resolve_in_module(module, base)
                if resolved is not None and resolved in self.classes:
                    visit(resolved)

        visit(class_fqn)
        return out

    def lookup_method(self, class_fqn: str, name: str) -> Optional[FunctionInfo]:
        """Resolve ``name`` through the class hierarchy."""
        for cls in self.mro(class_fqn):
            fqn = cls.methods.get(name)
            if fqn is not None:
                return self.functions.get(fqn)
        return None

    def attr_type(self, class_fqn: str, attr: str) -> Optional[str]:
        """Inferred project-class type of ``self.<attr>``, through bases."""
        for cls in self.mro(class_fqn):
            t = cls.attr_types.get(attr)
            if t is not None:
                return t
        return None

    def attr_container(self, class_fqn: str, attr: str) -> Optional[str]:
        """Inferred container kind (set/dict) of ``self.<attr>``."""
        for cls in self.mro(class_fqn):
            kind = cls.attr_containers.get(attr)
            if kind is not None:
                return kind
        return None


# -- construction ------------------------------------------------------------


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def annotation_class_name(node: Optional[ast.AST]) -> Optional[str]:
    """The dotted class name an annotation denotes, unwrapping
    ``Optional[T]`` / ``"T"`` string forms; None when too dynamic."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        head = _dotted(node.value)
        if head is not None and head.split(".")[-1] == "Optional":
            return annotation_class_name(node.slice)
        return None
    return _dotted(node)


def container_kind_of(node: ast.AST) -> Optional[str]:
    """SET_KIND/DICT_KIND when the expression builds a set or dict."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return SET_KIND
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return DICT_KIND
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        if name in ("set", "frozenset"):
            return SET_KIND
        if name == "dict":
            return DICT_KIND
    return None


_CONTAINER_ANNOTATIONS = {
    "set": SET_KIND,
    "Set": SET_KIND,
    "FrozenSet": SET_KIND,
    "frozenset": SET_KIND,
    "dict": DICT_KIND,
    "Dict": DICT_KIND,
}


def annotation_container_kind(node: Optional[ast.AST]) -> Optional[str]:
    """Container kind named by an annotation (``Set[int]``, ``dict``)."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        head = _dotted(node.value)
        if head is not None and head.split(".")[-1] == "Optional":
            return annotation_container_kind(node.slice)
        node = node.value
    name = _dotted(node)
    if name is None:
        return None
    return _CONTAINER_ANNOTATIONS.get(name.split(".")[-1])


def _record_imports(info: ModuleInfo, tree: ast.AST) -> None:
    package_parts = info.name.split(".")
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                if alias.name.split(".")[0] == PACKAGE:
                    info.bindings[bound] = alias.name if alias.asname else PACKAGE
                else:
                    info.bindings[bound] = f"ext:{alias.name}"
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative import: resolve against this module's package.
                base = package_parts[: len(package_parts) - node.level]
                src = ".".join(base + ([node.module] if node.module else []))
            else:
                src = node.module or ""
            for alias in node.names:
                bound = alias.asname or alias.name
                if alias.name == "*":
                    continue  # star imports are not used in the project
                if src.split(".")[0] == PACKAGE:
                    info.bindings[bound] = f"{src}.{alias.name}"
                else:
                    info.bindings[bound] = f"ext:{src}.{alias.name}"


def _self_attr_target(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _collect_class(
    table: SymbolTable, info: ModuleInfo, node: ast.ClassDef
) -> None:
    fqn = f"{info.name}.{node.name}"
    cls = ClassInfo(
        fqn=fqn,
        name=node.name,
        rel=info.rel,
        node=node,
        base_exprs=[b for b in (_dotted(base) for base in node.bases) if b],
    )
    table.classes[fqn] = cls
    info.classes[node.name] = fqn
    info.bindings.setdefault(node.name, fqn)
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            mfqn = f"{fqn}.{stmt.name}"
            table.functions[mfqn] = FunctionInfo(
                fqn=mfqn, name=stmt.name, rel=info.rel, node=stmt, class_fqn=fqn
            )
            cls.methods[stmt.name] = mfqn
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            t = annotation_class_name(stmt.annotation)
            if t is not None:
                cls.attr_types.setdefault(stmt.target.id, t)
            kind = annotation_container_kind(stmt.annotation)
            if kind is not None:
                cls.attr_containers.setdefault(stmt.target.id, kind)
    # self.<attr> assignments anywhere in the class body (methods).
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
            attr = _self_attr_target(sub.targets[0])
            if attr is None:
                continue
            if isinstance(sub.value, ast.Call):
                name = _dotted(sub.value.func)
                if name is not None:
                    cls.attr_types.setdefault(attr, name)  # resolved lazily
            kind = container_kind_of(sub.value)
            if kind is not None:
                cls.attr_containers.setdefault(attr, kind)
        elif isinstance(sub, ast.AnnAssign):
            attr = _self_attr_target(sub.target)
            if attr is None:
                continue
            t = annotation_class_name(sub.annotation)
            if t is not None:
                cls.attr_types.setdefault(attr, t)
            kind = annotation_container_kind(sub.annotation)
            if kind is None and sub.value is not None:
                kind = container_kind_of(sub.value)
            if kind is not None:
                cls.attr_containers.setdefault(attr, kind)


def build_symbol_table(sources: List[SourceFile]) -> SymbolTable:
    """Build the project symbol table over parsed source files."""
    table = SymbolTable()
    for sf in sources:
        info = ModuleInfo(rel=sf.rel, name=module_name_of(sf.rel), sf=sf)
        table.modules[info.name] = info
        _record_imports(info, sf.tree)
        for node in sf.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fqn = f"{info.name}.{node.name}"
                table.functions[fqn] = FunctionInfo(
                    fqn=fqn, name=node.name, rel=sf.rel, node=node
                )
                info.functions[node.name] = fqn
                info.bindings.setdefault(node.name, fqn)
            elif isinstance(node, ast.ClassDef):
                _collect_class(table, info, node)
    # Attribute types were recorded as written; canonicalize the ones
    # that resolve to project classes and drop the rest.
    for cls in table.classes.values():
        module = module_name_of(cls.rel)
        resolved_types: Dict[str, str] = {}
        for attr, written in cls.attr_types.items():
            resolved = table.resolve_in_module(module, written)
            if resolved is not None and resolved in table.classes:
                resolved_types[attr] = resolved
        cls.attr_types = resolved_types
    return table


def param_types(
    table: SymbolTable, fn: FunctionInfo
) -> Dict[str, str]:
    """``{param name: class fqn}`` from annotations that resolve."""
    module = module_name_of(fn.rel)
    node = fn.node
    out: Dict[str, str] = {}
    args = getattr(node, "args", None)
    if args is None:
        return out
    all_args: List[ast.arg] = (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    )
    for a in all_args:
        name = annotation_class_name(a.annotation)
        if name is None:
            continue
        resolved = table.resolve_in_module(module, name)
        if resolved is not None and resolved in table.classes:
            out[a.arg] = resolved
    return out


def param_containers(fn: FunctionInfo) -> Dict[str, str]:
    """``{param name: set|dict}`` from container annotations."""
    node = fn.node
    out: Dict[str, str] = {}
    args = getattr(node, "args", None)
    if args is None:
        return out
    for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        kind = annotation_container_kind(a.annotation)
        if kind is not None:
            out[a.arg] = kind
    return out


__all__ = [
    "ClassInfo",
    "DICT_KIND",
    "FunctionInfo",
    "ModuleInfo",
    "PACKAGE",
    "SET_KIND",
    "SymbolTable",
    "annotation_class_name",
    "annotation_container_kind",
    "build_symbol_table",
    "container_kind_of",
    "module_name_of",
    "param_containers",
    "param_types",
]
