"""Project call graph: resolved edges plus explicit open edges.

Resolution strategy (deliberately conservative — a wrong edge poisons
every rule built on top, a missing edge is recorded):

* ``name(...)`` — through the module's import/definition bindings;
  constructor calls resolve to the class's ``__init__`` and type the
  assigned local.
* ``self.m(...)`` / ``cls.m(...)`` / ``super().m(...)`` — through the
  project class hierarchy (MRO approximation: depth-first over project
  bases).
* ``expr.m(...)`` — through the shallow type environment: annotated
  parameters, ``self.<attr>`` types inferred from assignments and
  annotations, locals typed by constructor calls / typed attribute
  loads / project-function return annotations.
* Calls on **external** receivers (``np.zeros``, ``threading.Lock``)
  are *resolved-external*: they cannot reach project code and are
  skipped.
* Everything else — unknown receiver type, method missing from the
  hierarchy, calling a parameter or closure — becomes an
  :class:`OpenEdge` with a reason. Open edges are never silently
  dropped; ``graphsd lint --graph-debug`` prints them.

Nested functions and lambdas are attributed to their enclosing
top-level function or method; module-level code is attributed to a
synthetic ``<module>`` node per module.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.graph.symbols import (
    FunctionInfo,
    SymbolTable,
    annotation_class_name,
    module_name_of,
    param_types,
)

_BUILTIN_NAMES: Set[str] = set(dir(builtins))


@dataclass
class CallEdge:
    """One resolved call: ``caller`` invokes ``callee`` at ``lineno``."""

    caller: str
    callee: str
    lineno: int
    node: ast.Call


@dataclass
class OpenEdge:
    """One call the resolver could not attribute to a project function."""

    caller: str
    expr: str
    lineno: int
    reason: str


@dataclass
class Ref:
    """A project function referenced as a *value* (not called) — the
    shape of thread-target / callback escapes."""

    user: str
    target: str
    lineno: int


@dataclass
class CallGraph:
    edges: List[CallEdge] = field(default_factory=list)
    open_edges: List[OpenEdge] = field(default_factory=list)
    refs: List[Ref] = field(default_factory=list)
    #: callee fqn -> incoming edges / caller fqn -> outgoing edges.
    callers: Dict[str, List[CallEdge]] = field(default_factory=dict)
    callees: Dict[str, List[CallEdge]] = field(default_factory=dict)

    def add(self, edge: CallEdge) -> None:
        self.edges.append(edge)
        self.callers.setdefault(edge.callee, []).append(edge)
        self.callees.setdefault(edge.caller, []).append(edge)


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _FunctionResolver:
    """Resolves the calls of one function body."""

    def __init__(
        self,
        table: SymbolTable,
        graph: CallGraph,
        fn_fqn: str,
        body_owner: Optional[FunctionInfo],
        module: str,
    ) -> None:
        self.table = table
        self.graph = graph
        self.fqn = fn_fqn
        self.module = module
        self.class_fqn = body_owner.class_fqn if body_owner else None
        #: name -> project class fqn for params and locals.
        self.env: Dict[str, str] = {}
        if body_owner is not None:
            self.env.update(param_types(table, body_owner))

    # -- type environment --------------------------------------------------

    def type_of(self, node: ast.AST) -> Optional[str]:
        """Project-class FQN of an expression, or None."""
        if isinstance(node, ast.Name):
            if node.id in ("self", "cls") and self.class_fqn is not None:
                return self.class_fqn
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.type_of(node.value)
            if base is not None:
                return self.table.attr_type(base, node.attr)
            # Module attribute: ``mod.Class`` used as a value.
            dotted = _dotted(node)
            if dotted is not None:
                resolved = self.table.resolve_in_module(self.module, dotted)
                if resolved in self.table.classes:
                    return resolved
            return None
        if isinstance(node, ast.Call):
            return self._call_result_type(node)
        return None

    def _call_result_type(self, node: ast.Call) -> Optional[str]:
        target = self._resolve_call_target(node, record=False)
        if target is None:
            return None
        if target in self.table.classes:
            return target
        fn = self.table.functions.get(target)
        if fn is None:
            return None
        returns = annotation_class_name(getattr(fn.node, "returns", None))
        if returns is None:
            return None
        resolved = self.table.resolve_in_module(module_name_of(fn.rel), returns)
        if resolved in self.table.classes:
            return resolved
        return None

    def _is_external(self, node: ast.AST) -> bool:
        """Does the expression root at an external import binding?"""
        dotted = _dotted(node)
        if dotted is None:
            return False
        head = dotted.split(".")[0]
        info = self.table.modules.get(self.module)
        bound = info.bindings.get(head) if info else None
        return bound is not None and bound.startswith("ext:")

    # -- call resolution ---------------------------------------------------

    def _resolve_call_target(
        self, node: ast.Call, record: bool = True
    ) -> Optional[str]:
        """FQN of the called project function/class, or None.

        With ``record=True`` unresolvable calls become open edges.
        """
        func = node.func

        def open_edge(reason: str) -> None:
            if record:
                self.graph.open_edges.append(
                    OpenEdge(
                        caller=self.fqn,
                        expr=_dotted(func) or ast.unparse(func),
                        lineno=node.lineno,
                        reason=reason,
                    )
                )

        if isinstance(func, ast.Name):
            resolved = self.table.resolve_in_module(self.module, func.id)
            if resolved is not None:
                return resolved
            if func.id in self.env or not (
                func.id in _BUILTIN_NAMES
                or self._binds_external(func.id)
            ):
                open_edge("dynamic callable (local/parameter or unresolved name)")
            return None
        if isinstance(func, ast.Attribute):
            # super().m(...)
            if (
                isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "super"
                and self.class_fqn is not None
            ):
                for cls in self.table.mro(self.class_fqn)[1:]:
                    m = cls.methods.get(func.attr)
                    if m is not None:
                        return m
                open_edge("super() method not found in project hierarchy")
                return None
            recv_type = self.type_of(func.value)
            if recv_type is not None:
                found = self.table.lookup_method(recv_type, func.attr)
                if found is not None:
                    return found.fqn
                open_edge(
                    f"method .{func.attr} not found on {recv_type} "
                    "(dynamically attached or external base)"
                )
                return None
            dotted = _dotted(func)
            if dotted is not None:
                resolved = self.table.resolve_in_module(self.module, dotted)
                if resolved is not None:
                    return resolved
            if self._is_external(func.value) or self._is_literal(func.value):
                return None  # resolved-external, cannot reach project code
            open_edge("unknown receiver type")
            return None
        open_edge("computed callee expression")
        return None

    def _binds_external(self, name: str) -> bool:
        info = self.table.modules.get(self.module)
        bound = info.bindings.get(name) if info else None
        return bound is not None and bound.startswith("ext:")

    @staticmethod
    def _is_literal(node: ast.AST) -> bool:
        return isinstance(
            node,
            (ast.Constant, ast.JoinedStr, ast.List, ast.Tuple, ast.Dict, ast.Set),
        )

    # -- body walk ---------------------------------------------------------

    def run(self, body: List[ast.stmt]) -> None:
        call_funcs: Set[int] = set()
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    call_funcs.add(id(node.func))
        # Type locals from assignments, in source order, before resolving
        # (shallow flow-insensitivity: last assignment wins globally; the
        # project's hot paths assign collaborator locals exactly once).
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name):
                        t = self.type_of(node.value)
                        if t is not None:
                            self.env[target.id] = t
                elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    t = annotation_class_name(node.annotation)
                    if t is not None:
                        resolved = self.table.resolve_in_module(self.module, t)
                        if resolved in self.table.classes:
                            self.env[node.target.id] = resolved
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    target = self._resolve_call_target(node)
                    if target is None:
                        continue
                    if target in self.table.classes:
                        init = self.table.lookup_method(target, "__init__")
                        if init is not None:
                            target = init.fqn
                        else:
                            continue
                    if target in self.table.functions:
                        self.graph.add(
                            CallEdge(
                                caller=self.fqn,
                                callee=target,
                                lineno=node.lineno,
                                node=node,
                            )
                        )
                elif (
                    isinstance(node, (ast.Name, ast.Attribute))
                    and isinstance(getattr(node, "ctx", None), ast.Load)
                    and id(node) not in call_funcs
                ):
                    self._record_ref(node)

    def _record_ref(self, node: ast.AST) -> None:
        """Record project *methods* referenced as values (escapes)."""
        if not isinstance(node, ast.Attribute):
            return
        recv_type = self.type_of(node.value)
        if recv_type is None:
            return
        found = self.table.lookup_method(recv_type, node.attr)
        if found is not None:
            self.graph.refs.append(
                Ref(user=self.fqn, target=found.fqn, lineno=node.lineno)
            )


def module_node_fqn(module: str) -> str:
    """The synthetic call-graph node for a module's top-level code."""
    return f"{module}.<module>"


def build_call_graph(table: SymbolTable) -> CallGraph:
    """Resolve every call site in the project."""
    graph = CallGraph()
    for fn in table.functions.values():
        module = module_name_of(fn.rel)
        resolver = _FunctionResolver(table, graph, fn.fqn, fn, module)
        resolver.run(list(fn.node.body))
    for info in table.modules.values():
        top_level: List[ast.stmt] = [
            stmt
            for stmt in info.sf.tree.body
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        ]
        if top_level:
            resolver = _FunctionResolver(
                table, graph, module_node_fqn(info.name), None, info.name
            )
            resolver.run(top_level)
    return graph


def shortest_chain(
    graph: CallGraph,
    start: str,
    targets: Set[str],
    blocked: Set[str],
) -> Optional[List[str]]:
    """Shortest caller chain from any of ``targets`` down to ``start``.

    Walks *incoming* edges from ``start``; never traverses through a
    ``blocked`` node (the charged-substrate mediators). Returns the
    chain ``[entry, ..., start]`` or None.
    """
    from collections import deque

    parent: Dict[str, Optional[str]] = {start: None}
    q = deque([start])
    while q:
        cur = q.popleft()
        if cur in targets:
            chain = []
            walk: Optional[str] = cur
            while walk is not None:
                chain.append(walk)
                walk = parent[walk]
            return chain
        for edge in graph.callers.get(cur, ()):  # edges into cur
            nxt = edge.caller
            if nxt in parent or nxt in blocked:
                continue
            parent[nxt] = cur
            q.append(nxt)
    return None


__all__ = [
    "CallEdge",
    "CallGraph",
    "OpenEdge",
    "Ref",
    "build_call_graph",
    "module_node_fqn",
    "shortest_chain",
]
