"""Whole-program analysis: symbols -> call graph -> CFG -> dataflow.

The per-file checker framework (PR 4) sees one function at a time; the
rules that police *interprocedural* invariants (charge coverage, lock
propagation, resource lifecycles) need to see the project. This
subpackage builds that view:

* :mod:`~repro.analysis.graph.symbols` — a project symbol table:
  modules, classes (with base-class links and inferred attribute
  types), functions/methods, and per-module import bindings.
* :mod:`~repro.analysis.graph.callgraph` — resolved call edges between
  project functions (module functions, ``self.``/``cls.`` dispatch
  through the class hierarchy, attribute chains through inferred
  types), with every *unresolvable* dynamic call recorded as an
  explicit **open edge** — never silently dropped.
* :mod:`~repro.analysis.graph.cfg` — per-function control-flow graphs
  at statement granularity, including exceptional edges into
  ``except``/``finally``, plus dominance/post-dominance.
* :mod:`~repro.analysis.graph.dataflow` — reaching definitions over the
  CFG and the container-kind inference the determinism rule uses.
* :mod:`~repro.analysis.graph.project` — the :class:`ProjectGraph`
  facade tying it together, with a pickle cache keyed by the hash of
  every source file (see ``graphsd lint --graph-cache``).
"""

from repro.analysis.graph.callgraph import CallEdge, CallGraph, OpenEdge
from repro.analysis.graph.cfg import CFG, build_cfg
from repro.analysis.graph.dataflow import reaching_definitions
from repro.analysis.graph.project import ProjectGraph, build_project_graph
from repro.analysis.graph.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    SymbolTable,
    build_symbol_table,
)

__all__ = [
    "CFG",
    "CallEdge",
    "CallGraph",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "OpenEdge",
    "ProjectGraph",
    "SymbolTable",
    "build_cfg",
    "build_project_graph",
    "build_symbol_table",
    "reaching_definitions",
]
