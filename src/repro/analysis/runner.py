"""Lint orchestration: collect files, run checkers, apply the baseline.

The committed baseline (``src/repro/analysis/baseline.json``) holds the
:attr:`~repro.analysis.findings.Finding.key` of every grandfathered
finding. ``run_lint`` reports all findings but only *new* ones (keys
absent from the baseline) affect the exit status, so the gate can land
before the last legacy violation is fixed. Regenerate with
``graphsd lint --update-baseline`` (see ``docs/ANALYSIS.md``).

Whole-program rules (``GraphChecker`` subclasses) run over the project
graph built from **every** file under the package root, even when only
a subset is being linted — an interprocedural finding needs the whole
graph to exist at all. Their findings are then filtered down to the
linted set, so ``graphsd lint --changed`` surfaces exactly the chains
that land in a changed file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.analysis.base import Checker, GraphChecker
from repro.analysis.checkers import ALL_CHECKERS
from repro.analysis.findings import Finding
from repro.analysis.graph.project import ProjectGraph, build_project_graph
from repro.analysis.source import SourceFile

BASELINE_VERSION = 1


def package_root() -> Path:
    """The installed ``repro`` package directory (the default lint scope)."""
    return Path(__file__).resolve().parent.parent


def default_baseline_path() -> Path:
    return Path(__file__).resolve().parent / "baseline.json"


# -- file collection ---------------------------------------------------------


def collect_sources(
    paths: Sequence[Path], root: Optional[Path] = None
) -> List[Tuple[Path, str]]:
    """Expand files/directories into ``(path, rel)`` pairs.

    ``rel`` is the scope path the checkers see: relative to ``root``
    (default: the ``repro`` package) when the file lives under it,
    otherwise the file's own name — fixtures outside the package only
    match unscoped rules unless the caller supplies their root.
    """
    root = (root or package_root()).resolve()
    out: List[Tuple[Path, str]] = []
    for p in paths:
        p = Path(p)
        if not p.exists():
            raise ValueError(f"lint path does not exist: {p}")
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            f = f.resolve()
            try:
                rel = f.relative_to(root).as_posix()
            except ValueError:
                rel = f.name
            out.append((f, rel))
    return out


# -- baseline ----------------------------------------------------------------


def load_baseline(path: Path) -> Dict[str, str]:
    """``{finding key: note}`` from a baseline file (empty if absent)."""
    if not path.exists():
        return {}
    try:
        data = json.loads(path.read_text())
        entries = data["entries"]
        if isinstance(entries, list):  # legacy shape: plain key list
            return {str(k): "" for k in entries}
        return {str(k): str(v) for k, v in entries.items()}
    except (ValueError, KeyError, TypeError) as exc:
        raise ValueError(f"malformed baseline file {path}: {exc}") from exc


def write_baseline(findings: Iterable[Finding], path: Path) -> None:
    entries = {
        f.key: f"{f.path}:{f.line} {f.message}" for f in findings
    }
    payload = {"version": BASELINE_VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


# -- running -----------------------------------------------------------------


@dataclass
class LintResult:
    findings: List[Finding] = field(default_factory=list)
    new_findings: List[Finding] = field(default_factory=list)
    baselined: int = 0
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)
    #: Project graph the whole-program rules ran over (None when no
    #: graph rule was active). Not serialized; ``--graph-debug`` reads it.
    graph: Optional[ProjectGraph] = None

    @property
    def exit_code(self) -> int:
        return 1 if (self.new_findings or self.parse_errors) else 0

    def to_dict(self) -> Dict[str, object]:
        new = set(self.new_findings)
        out: Dict[str, object] = {
            "files_checked": self.files_checked,
            "new_findings": len(self.new_findings),
            "baselined": self.baselined,
            "parse_errors": list(self.parse_errors),
            "findings": [dict(f.to_dict(), new=(f in new)) for f in self.findings],
        }
        if self.graph is not None:
            out["graph"] = self.graph.stats()
        return out

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        lines.append(
            f"{len(self.new_findings)} new finding(s), "
            f"{self.baselined} baselined, "
            f"{self.files_checked} file(s) checked"
        )
        lines.extend(f"parse error: {e}" for e in self.parse_errors)
        return "\n".join(lines)


def run_lint(
    paths: Optional[Sequence[Path]] = None,
    root: Optional[Path] = None,
    baseline: Optional[Dict[str, str]] = None,
    checkers: Optional[Sequence[Type[Checker]]] = None,
    graph_cache: Optional[Path] = None,
) -> LintResult:
    """Run every checker over ``paths`` and split findings by baseline.

    ``graph_cache`` points at a directory for the pickled project graph
    (content-hash keyed); None builds it fresh each run.
    """
    if paths is None:
        paths = [package_root()]
    sources = collect_sources(paths, root=root)
    active = [cls() for cls in (checkers if checkers is not None else ALL_CHECKERS)]
    graph_rules = [c for c in active if isinstance(c, GraphChecker)]
    file_rules = [c for c in active if not isinstance(c, GraphChecker)]
    result = LintResult()
    baseline = baseline or {}
    linted: Dict[str, SourceFile] = {}
    for path, rel in sources:
        try:
            sf = SourceFile.from_path(path, rel)
        except SyntaxError as exc:
            result.parse_errors.append(f"{rel}: {exc}")
            continue
        linted[rel] = sf
        result.files_checked += 1
        file_findings = sf.annotation_findings()
        for checker in file_rules:
            if checker.applies_to(rel):
                file_findings.extend(checker.check(sf))
        result.findings.extend(file_findings)

    if graph_rules:
        project = _project_for(linted, root, graph_cache, result)
        result.graph = project
        for checker in graph_rules:
            for f in checker.check_project(project):
                if f.path in linted:
                    result.findings.append(f)

    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    for f in result.findings:
        if f.key in baseline:
            result.baselined += 1
        else:
            result.new_findings.append(f)
    return result


def _project_for(
    linted: Dict[str, SourceFile],
    root: Optional[Path],
    graph_cache: Optional[Path],
    result: LintResult,
) -> ProjectGraph:
    """Assemble the whole-package source set (plus any linted extras)."""
    merged: Dict[str, SourceFile] = {}
    scope = (root or package_root()).resolve()
    if scope.is_dir():
        for path, rel in collect_sources([scope], root=scope):
            if rel in linted:
                continue  # the linted parse is authoritative
            try:
                merged[rel] = SourceFile.from_path(path, rel)
            except SyntaxError as exc:
                # A broken un-linted file degrades the graph (its calls
                # become unknown) but must not fail an unrelated lint.
                result.parse_errors.append(f"{rel}: {exc} (graph build)")
    merged.update(linted)
    return build_project_graph(list(merged.values()), cache_dir=graph_cache)


def check_text(
    text: str,
    rel: str,
    checkers: Optional[Sequence[Type[Checker]]] = None,
) -> List[Finding]:
    """Run checkers over in-memory source (fixture/self-test entry point)."""
    return check_texts({rel: text}, checkers=checkers)


def check_texts(
    files: Dict[str, str],
    checkers: Optional[Sequence[Type[Checker]]] = None,
) -> List[Finding]:
    """Run checkers over a dict of in-memory sources ``{rel: text}``.

    Whole-program rules see a project graph built from exactly these
    files — multi-file fixtures exercise cross-module resolution.
    """
    parsed = {rel: SourceFile(rel, text) for rel, text in files.items()}
    active = [cls() for cls in (checkers if checkers is not None else ALL_CHECKERS)]
    findings: List[Finding] = []
    for sf in parsed.values():
        findings.extend(sf.annotation_findings())
        for checker in active:
            if not isinstance(checker, GraphChecker) and checker.applies_to(sf.rel):
                findings.extend(checker.check(sf))
    graph_rules = [c for c in active if isinstance(c, GraphChecker)]
    if graph_rules:
        project = build_project_graph(list(parsed.values()))
        for checker in graph_rules:
            findings.extend(checker.check_project(project))
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule_id))
