"""Extension ablation: sub-block buffer budget sweep.

The paper fixes the memory budget at 5% of the graph (§5.1) and shows
buffering helps up to 21% (Fig. 12). This sweep varies the buffer's
share from 0 to 100% of the edge data on UKUnion/PR and checks the
expected saturation curve: monotone non-increasing execution time, with
the marginal benefit vanishing once every secondary sub-block fits.
"""

from conftest import print_report

from repro.algorithms import PageRank
from repro.bench.reporting import ExperimentReport
from repro.core import GraphSDConfig, GraphSDEngine
from repro.datasets import load_dataset
from repro.graph import preprocess_graphsd
from repro.storage import Device, SimulatedDisk

FRACTIONS = (0.0, 0.05, 0.15, 0.5, 1.0)


def run_sweep(tmp_root):
    edges = load_dataset("ukunion")
    device = Device(tmp_root / "store", SimulatedDisk())
    store = preprocess_graphsd(edges, device, P=8).store
    report = ExperimentReport(
        "ablation-budget",
        "Buffer budget sweep: PR on ukunion",
        ["buffer share", "time (s)", "I/O (MiB)", "cache hits"],
    )
    times = []
    for fraction in FRACTIONS:
        if fraction == 0.0:
            config = GraphSDConfig.no_buffering()
        else:
            config = GraphSDConfig(buffer_fraction=fraction)
        result = GraphSDEngine(store, config=config).run(PageRank(iterations=6))
        times.append(result.sim_seconds)
        report.add_row(
            f"{int(100 * fraction)}%",
            result.sim_seconds,
            result.io_traffic / (1 << 20),
            result.io.cache_hits,
        )
    return report, times


def test_buffer_budget_sweep(benchmark, tmp_path):
    report, times = benchmark.pedantic(
        lambda: run_sweep(tmp_path), rounds=1, iterations=1
    )
    print_report(report)

    # Monotone non-increasing in the budget (tiny float tolerance).
    for a, b in zip(times, times[1:]):
        assert b <= a * (1 + 1e-9), times
    # A full-size buffer genuinely beats no buffer.
    assert times[-1] < times[0]
    # Saturation: going from 50% to 100% buys little.
    assert (times[-2] - times[-1]) < 0.25 * max(times[0] - times[-1], 1e-12)

    benchmark.extra_info["times"] = [round(t, 4) for t in times]
