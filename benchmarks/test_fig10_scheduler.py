"""Fig. 10: per-iteration time of CC on UKUnion under the adaptive
state-aware scheduler vs pinned I/O models.

Paper's finding (§5.4): "GraphSD is able to select the better I/O access
model in all iterations" — the adaptive run tracks the per-iteration
minimum of always-full (-b3) and always-on-demand (-b4), and its total
beats both pinned strategies.
"""

from conftest import print_report

from repro.bench import run_fig10_scheduler


def test_fig10_state_aware_scheduling(benchmark, harness):
    report = benchmark.pedantic(
        lambda: run_fig10_scheduler(harness), rounds=1, iterations=1
    )
    print_report(report)

    totals = report.data["totals"]
    per_iter = report.data["per_iteration"]

    # The adaptive engine tracks the better pinned model overall (10%
    # slack: the benefit evaluation compares single-iteration I/O costs
    # and cannot see cross-iteration coupling — committing to an FCIU
    # pair vs SCIU's re-push savings — the same blind spot the paper's
    # model has) and decisively beats the worse one.
    best = min(totals["graphsd-b3"], totals["graphsd-b4"])
    worst = max(totals["graphsd-b3"], totals["graphsd-b4"])
    assert totals["graphsd"] <= best * 1.10
    assert totals["graphsd"] < worst * 0.8

    # Both models must actually be exercised during the run: CC starts
    # with a full frontier (full model) and ends with a trickle
    # (on-demand model) — the crossover Fig. 10 plots.
    g = harness.run("graphsd", "cc", "ukunion")
    models = set(g.model_history)
    assert "sciu" in models, g.model_history
    assert models & {"fciu", "full"}, g.model_history

    # Per-iteration, the adaptive choice tracks the cheaper pinned model
    # (compared where all three traces have the iteration; FCIU pairing
    # makes tails differ in length).
    n = min(len(per_iter[s]) for s in per_iter)
    tracked = sum(
        per_iter["graphsd"][k]
        <= 1.25 * min(per_iter["graphsd-b3"][k], per_iter["graphsd-b4"][k]) + 1e-6
        for k in range(n)
    )
    assert tracked >= 0.7 * n, f"adaptive tracked the best model in only {tracked}/{n}"

    benchmark.extra_info["total_adaptive"] = round(totals["graphsd"], 3)
    benchmark.extra_info["total_always_full"] = round(totals["graphsd-b3"], 3)
    benchmark.extra_info["total_always_on_demand"] = round(totals["graphsd-b4"], 3)
