"""Fig. 9: effect of the update strategy (GraphSD vs -b1 vs -b2).

Paper's findings (§5.4): full GraphSD beats -b1 (no cross-iteration
update) by ~1.7x and -b2 (no selective update) by ~2.8x; -b2 is worse
than -b1, i.e. active-vertex-aware processing contributes more than
cross-iteration processing. I/O amounts shrink by ~1.6x / ~5.4x.
"""

from conftest import print_report

from repro.bench import run_fig9_ablation


def test_fig9_update_strategy_ablation(benchmark, harness):
    report = benchmark.pedantic(
        lambda: run_fig9_ablation(harness), rounds=1, iterations=1
    )
    print_report(report)

    t = report.data["time_ratios"]
    io = report.data["io_ratios"]
    # Both ablations lose to the full strategy.
    assert t["b1"] > 1.0 and t["b2"] > 1.0, t
    assert io["b1"] >= 1.0 and io["b2"] >= 1.0, io
    # The paper's ordering: disabling selectivity (b2) hurts more than
    # disabling cross-iteration computation (b1).
    assert t["b2"] > t["b1"], t
    assert io["b2"] > io["b1"], io

    benchmark.extra_info["time_vs_b1"] = round(t["b1"], 3)
    benchmark.extra_info["time_vs_b2"] = round(t["b2"], 3)
    benchmark.extra_info["io_vs_b1"] = round(io["b1"], 3)
    benchmark.extra_info["io_vs_b2"] = round(io["b2"], 3)
