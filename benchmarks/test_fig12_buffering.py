"""Fig. 12: effect of the sub-block buffering scheme on UKUnion.

Paper's finding (§5.4): priority buffering of secondary sub-blocks
improves execution time by up to 21% (the FCIU model's second iteration
hits memory instead of disk).
"""

from conftest import print_report

from repro.bench import run_fig12_buffering


def test_fig12_buffering_effect(benchmark, harness):
    report = benchmark.pedantic(
        lambda: run_fig12_buffering(harness), rounds=1, iterations=1
    )
    print_report(report)

    improvements = report.data["improvements"]
    # Buffering never hurts (beyond float noise) and helps somewhere.
    assert all(g > -1e-6 for g in improvements), improvements
    assert max(improvements) > 0.02, improvements
    # ... but cannot plausibly exceed the paper's magnitude by much.
    assert max(improvements) < 0.40, improvements

    benchmark.extra_info["max_improvement_pct"] = round(100 * max(improvements), 1)
