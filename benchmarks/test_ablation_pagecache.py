"""Extension ablation: why the paper disables the OS page cache (§5.1).

The paper measures with direct I/O "for fair comparison and evaluation
of the I/O optimizations". This bench makes the rationale measurable:
running GraphSD and HUS-Graph on SSSP/twitter2010 with a simulated page
cache sized to hold a growing share of the graph, the charged-I/O gap
between the two I/O strategies compresses — once the working set is
cache-resident, the engines differ only in compute, and the experiment
would no longer be measuring I/O optimizations at all.
"""

import numpy as np

from conftest import print_report

from repro.algorithms import SSSP
from repro.baselines import HUSGraphEngine
from repro.bench.reporting import ExperimentReport
from repro.core import GraphSDEngine
from repro.datasets import load_dataset
from repro.graph import preprocess_graphsd, preprocess_husgraph
from repro.storage import Device, PageCache, SimulatedDisk

#: Page-cache capacity as a multiple of the graph's edge bytes.
CACHE_SHARES = (0.0, 0.5, 2.0)


def run_sweep(tmp_root):
    edges = load_dataset("twitter2010", weighted=True)
    report = ExperimentReport(
        "ablation-pagecache",
        "Page-cache sweep: SSSP on twitter2010, GraphSD vs HUS-Graph",
        ["cache size", "graphsd io (s)", "husgraph io (s)", "io gap (hus - graphsd, s)"],
    )
    gaps = []
    values = []
    for share in CACHE_SHARES:
        def cache():
            if share == 0.0:
                return None
            return PageCache(int(share * edges.nbytes_on_disk))

        dev_g = Device(tmp_root / f"g{share}", SimulatedDisk(), page_cache=cache())
        store_g = preprocess_graphsd(edges, dev_g, P=8).store
        # Preprocessing warmed the cache; clear it to model a fresh boot.
        if dev_g.page_cache:
            dev_g.page_cache.clear()
        run_g = GraphSDEngine(store_g).run(SSSP(source=0))

        dev_h = Device(tmp_root / f"h{share}", SimulatedDisk(), page_cache=cache())
        store_h = preprocess_husgraph(edges, dev_h, P=8).store
        if dev_h.page_cache:
            dev_h.page_cache.clear()
        run_h = HUSGraphEngine(store_h).run(SSSP(source=0))

        gap = run_h.breakdown.io - run_g.breakdown.io
        gaps.append(gap)
        values.append((run_g.values, run_h.values))
        label = "direct I/O" if share == 0.0 else f"{share:g}x graph"
        report.add_row(label, run_g.breakdown.io, run_h.breakdown.io, gap)
    return report, gaps, values


def test_pagecache_compresses_io_differences(benchmark, tmp_path):
    report, gaps, values = benchmark.pedantic(
        lambda: run_sweep(tmp_path), rounds=1, iterations=1
    )
    print_report(report)

    # Correctness is cache-independent.
    for vg, vh in values:
        assert np.allclose(vg, values[0][0], equal_nan=True)
        assert np.allclose(vh, values[0][1], equal_nan=True)

    # The I/O-time gap between the strategies shrinks as the cache grows
    # — the effect that would confound an I/O-optimization study.
    assert gaps[0] > 0, gaps
    assert gaps[-1] < 0.5 * gaps[0], gaps

    benchmark.extra_info["io_gap_direct"] = round(gaps[0], 4)
    benchmark.extra_info["io_gap_2x_cache"] = round(gaps[-1], 4)
