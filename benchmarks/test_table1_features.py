"""Table 1: the optimization matrix of all implemented systems."""

from conftest import print_report

from repro.bench import run_table1_features


def test_table1_feature_matrix(benchmark):
    report = benchmark.pedantic(run_table1_features, rounds=1, iterations=1)
    print_report(report)
    features = report.data["features"]
    # GraphSD is the only engine with every optimization — the paper's
    # positioning claim.
    assert [s for s, f in features.items() if all(f.values())] == ["graphsd"]
    benchmark.extra_info["systems"] = len(features)
