"""Extension ablation: sensitivity to the grid dimension ``P``.

Not in the paper (which fixes its partition count), but a design choice
DESIGN.md calls out. The trade-off the sweep exposes:

* small ``P`` → the upper triangle + diagonal covers a larger fraction
  ``(P+1)/2P`` of the grid, so FCIU pre-propagates more and the second
  iteration of each round reads less;
* large ``P`` → smaller sub-blocks, finer selective access and a buffer
  that can actually fit blocks within the 5% budget.

The assertion is consistency, not a winner: results must be identical
across ``P`` and the execution time must stay within a sane envelope.
"""

import numpy as np
import pytest

from conftest import print_report

from repro.bench.reporting import ExperimentReport
from repro.core import GraphSDEngine
from repro.datasets import load_dataset
from repro.graph import preprocess_graphsd
from repro.algorithms import SSSP, PageRank
from repro.storage import Device, SimulatedDisk

PS = (2, 4, 8, 16)


def run_sweep(tmp_root):
    edges = load_dataset("twitter2010", weighted=True)
    report = ExperimentReport(
        "ablation-P",
        "Grid dimension sweep on twitter2010 (SSSP + PR)",
        ["P", "sssp time (s)", "sssp I/O (MiB)", "pr time (s)", "pr I/O (MiB)"],
    )
    values = {}
    times = {}
    for P in PS:
        device = Device(tmp_root / f"P{P}", SimulatedDisk())
        store = preprocess_graphsd(edges, device, P=P).store
        engine = GraphSDEngine(store)
        sssp = engine.run(SSSP(source=0))
        pr = engine.run(PageRank(iterations=5))
        values[P] = (sssp.values, pr.values)
        times[P] = (sssp.sim_seconds, pr.sim_seconds)
        report.add_row(
            P,
            sssp.sim_seconds,
            sssp.io_traffic / (1 << 20),
            pr.sim_seconds,
            pr.io_traffic / (1 << 20),
        )
    return report, values, times


def test_partition_sweep(benchmark, tmp_path):
    report, values, times = benchmark.pedantic(
        lambda: run_sweep(tmp_path), rounds=1, iterations=1
    )
    print_report(report)

    # Correctness is invariant under P.
    base_sssp, base_pr = values[PS[0]]
    for P in PS[1:]:
        assert np.allclose(values[P][0], base_sssp, equal_nan=True)
        assert np.allclose(values[P][1], base_pr)

    # Performance varies but stays within a small envelope (no cliff).
    for algo_idx in (0, 1):
        ts = [times[P][algo_idx] for P in PS]
        assert max(ts) < 3.0 * min(ts), ts

    benchmark.extra_info["times"] = {P: tuple(round(x, 3) for x in times[P]) for P in PS}
