"""Fig. 8: preprocessing time of GraphSD, HUS-Graph and Lumos.

Paper's findings (§5.3): HUS-Graph preprocesses slowest (two sorted edge
copies) — about 1.8x Lumos and 1.4x GraphSD; Lumos is fastest (single
unsorted copy); GraphSD sits in between (single sorted + indexed copy).
"""

from conftest import print_report

from repro.bench import run_fig8_preprocessing


def test_fig8_preprocessing_time(benchmark, harness):
    report = benchmark.pedantic(
        lambda: run_fig8_preprocessing(harness), rounds=1, iterations=1
    )
    print_report(report)

    totals = report.data["totals"]
    assert totals["lumos"] < totals["graphsd"] < totals["husgraph"]

    hus_vs_lumos = totals["husgraph"] / totals["lumos"]
    hus_vs_graphsd = totals["husgraph"] / totals["graphsd"]
    # Paper: 1.8x and 1.4x; assert the band loosely.
    assert 1.3 < hus_vs_lumos < 3.0, hus_vs_lumos
    assert 1.1 < hus_vs_graphsd < 2.5, hus_vs_graphsd

    # Per dataset the ordering holds too.
    for row in report.rows:
        _ds, graphsd_t, hus_t, lumos_t = row[0], row[1], row[2], row[3]
        assert lumos_t < graphsd_t < hus_t

    benchmark.extra_info["husgraph_vs_lumos"] = round(hus_vs_lumos, 3)
    benchmark.extra_info["husgraph_vs_graphsd"] = round(hus_vs_graphsd, 3)
