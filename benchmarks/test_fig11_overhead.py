"""Fig. 11: overhead of the state-aware scheduling strategy.

Paper's finding (§5.4): the benefit-evaluation compute is negligible
next to the I/O time it saves (e.g. PR-D: 3.4s of evaluation vs 158s of
reduced I/O on Twitter2010).
"""

from conftest import print_report

from repro.bench import run_fig11_overhead


def test_fig11_scheduling_overhead(benchmark, harness):
    report = benchmark.pedantic(
        lambda: run_fig11_overhead(harness), rounds=1, iterations=1
    )
    print_report(report)

    for row in report.rows:
        algo, overhead, reduced = row[0], row[1], row[2]
        if algo == "PR":
            # PR is pinned to the full model: no evaluations at all.
            assert overhead == 0.0
            continue
        # Evaluation must be orders of magnitude below the saved I/O
        # whenever the scheduler saved anything.
        if reduced > 0:
            assert overhead < 0.05 * reduced, (algo, overhead, reduced)

    benchmark.extra_info["rows"] = len(report.rows)
