"""Shared benchmark fixtures.

One session-scoped :class:`~repro.bench.harness.Harness` serves every
benchmark module: dataset proxies are generated once, each on-disk
representation is preprocessed once, and deterministic run results are
memoized, so experiments that share cells (Table 4 / Figs. 5-7) pay for
each (system, algorithm, dataset) combination exactly once — mirroring
how the paper's evaluation reuses preprocessed graphs (§5.3).

Every benchmark asserts the *shape* relations the paper reports (who
wins, roughly by how much) and prints the corresponding table so
``pytest benchmarks/ --benchmark-only`` output reads like §5.
"""

import pytest

from repro.bench import Harness


def pytest_addoption(parser):
    parser.addoption(
        "--graphsd-partitions",
        type=int,
        default=8,
        help="grid dimension P used by the benchmark harness",
    )
    parser.addoption(
        "--graphsd-verify",
        action="store_true",
        help="verify every benchmark run against the in-memory BSP oracle",
    )


@pytest.fixture(scope="session")
def harness(request):
    with Harness(
        P=request.config.getoption("--graphsd-partitions"),
        verify=request.config.getoption("--graphsd-verify"),
    ) as h:
        yield h


def print_report(report):
    print()
    print(report.render())
