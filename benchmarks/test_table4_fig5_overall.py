"""Table 4 + Fig. 5: overall execution time, GraphSD vs HUS-Graph vs Lumos.

Paper's findings this bench checks the *shape* of (§5.2):

* GraphSD finishes first in all (algorithm, dataset) cells;
* average speedup over HUS-Graph ~1.7x (up to 2.7x), over Lumos ~2.7x
  (up to 3.9x) — we assert the direction and a conservative band;
* PR still beats Lumos (~1.4x) thanks to FCIU + buffering even though
  active-vertex awareness buys nothing for PR.
"""

from conftest import print_report

from repro.bench import run_table4_fig5
from repro.bench.reporting import ExperimentReport
from repro.datasets import table3_rows


def test_table4_and_fig5(benchmark, harness):
    def run():
        return run_table4_fig5(harness)

    table4, fig5 = benchmark.pedantic(run, rounds=1, iterations=1)

    # Table 3 context (the dataset proxies).
    t3 = ExperimentReport(
        "table3", "Dataset proxies", list(table3_rows()[0].keys())
    )
    for row in table3_rows():
        t3.add_row(*row.values())
    print_report(t3)
    print_report(table4)
    print_report(fig5)

    results = fig5.data["results"]
    algorithms = ("pr", "pr-d", "cc", "sssp")
    datasets = {key.split("/")[1] for key in results}

    hus_ratios, lumos_ratios = [], []
    for algo in algorithms:
        for ds in datasets:
            g = results[f"{algo}/{ds}/graphsd"]
            hus_ratios.append(results[f"{algo}/{ds}/husgraph"] / g)
            lumos_ratios.append(results[f"{algo}/{ds}/lumos"] / g)

    # GraphSD wins every cell (allowing sub-percent ties).
    assert min(hus_ratios) > 0.99
    assert min(lumos_ratios) > 0.99
    # Average and peak speedups land in the paper's band's direction.
    def avg(xs):
        return sum(xs) / len(xs)
    assert avg(hus_ratios) > 1.15, f"HUS avg speedup too small: {avg(hus_ratios):.2f}"
    assert max(lumos_ratios) > 2.0, f"Lumos peak speedup too small: {max(lumos_ratios):.2f}"
    assert avg(lumos_ratios) > avg(hus_ratios), "Lumos should trail HUS-Graph overall"

    # PR vs Lumos ~1.4x in the paper: assert > 1.2x.
    pr_lumos = [results[f"pr/{ds}/lumos"] / results[f"pr/{ds}/graphsd"] for ds in datasets]
    assert avg(pr_lumos) > 1.2

    benchmark.extra_info["avg_speedup_vs_husgraph"] = round(avg(hus_ratios), 3)
    benchmark.extra_info["avg_speedup_vs_lumos"] = round(avg(lumos_ratios), 3)
    benchmark.extra_info["max_speedup_vs_husgraph"] = round(max(hus_ratios), 3)
    benchmark.extra_info["max_speedup_vs_lumos"] = round(max(lumos_ratios), 3)
