"""Fig. 7: I/O traffic on Twitter2010 and UK2007.

Paper's findings (§5.2): GraphSD moves the least data — about 1.6x less
than HUS-Graph and 5.5x less than Lumos on average; for PR the worst
offender is the system without cross-iteration computation, for the
frontier algorithms it is the one reading inactive edges (Lumos).
"""

from conftest import print_report

from repro.bench import run_fig7_io_traffic


def test_fig7_io_traffic(benchmark, harness):
    report = benchmark.pedantic(
        lambda: run_fig7_io_traffic(harness), rounds=1, iterations=1
    )
    print_report(report)

    ratios = report.data["ratios"]
    assert ratios["husgraph"] > 1.2, ratios
    assert ratios["lumos"] > 1.5, ratios
    assert ratios["lumos"] > ratios["husgraph"]

    # Per-cell: GraphSD never moves more data than either baseline.
    for row in report.rows:
        graphsd_mib, hus_mib, lumos_mib = row[2], row[3], row[4]
        assert graphsd_mib <= hus_mib * 1.01
        assert graphsd_mib <= lumos_mib * 1.01

    benchmark.extra_info["io_ratio_husgraph"] = round(ratios["husgraph"], 3)
    benchmark.extra_info["io_ratio_lumos"] = round(ratios["lumos"], 3)
