"""Fig. 6: runtime breakdown (disk I/O vs vertex updating) on Twitter2010.

Paper's findings (§5.2): execution time is dominated by disk I/O
(56-91%) for every system and algorithm; GraphSD's total disk I/O time
is ~73% of HUS-Graph's and ~49% of Lumos's.
"""

from conftest import print_report

from repro.bench import run_fig6_breakdown


def test_fig6_runtime_breakdown(benchmark, harness):
    report = benchmark.pedantic(
        lambda: run_fig6_breakdown(harness), rounds=1, iterations=1
    )
    print_report(report)

    # I/O dominates every cell, within the paper's 56-91% band (loosened
    # floor: the simulated compute rates are calibrated, not fitted).
    for row in report.rows:
        io_share = float(str(row[-1]).rstrip("%"))
        assert 40.0 <= io_share <= 99.0, row

    io = report.data["io_by_system"]
    assert io["graphsd"] < io["husgraph"] < io["lumos"]
    benchmark.extra_info["graphsd_io_vs_husgraph"] = round(io["graphsd"] / io["husgraph"], 3)
    benchmark.extra_info["graphsd_io_vs_lumos"] = round(io["graphsd"] / io["lumos"], 3)
