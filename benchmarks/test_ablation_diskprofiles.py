"""Extension ablation: storage media and the on-demand/full crossover.

The paper's future work targets faster storage (Optane PMM). The
scheduler's decision hinges on the sequential/random bandwidth gap:

* HDD  (seq/ran ~ 12x) — on-demand pays off only for small frontiers;
* SSD  (seq/ran ~ 1.7x) — the crossover moves toward larger frontiers;
* NVMe (seq/ran ~ 1.3x) — selective access wins almost everywhere.

This sweep runs CC on uk2007 under each profile and checks that the
fraction of iterations scheduled on-demand grows monotonically as the
random-access penalty shrinks, while results stay identical.
"""

import numpy as np

from conftest import print_report

from repro.algorithms import ConnectedComponents
from repro.bench.reporting import ExperimentReport
from repro.core import GraphSDEngine
from repro.datasets import load_dataset
from repro.graph import preprocess_graphsd
from repro.storage import (
    Device,
    HDD_PROFILE,
    MachineProfile,
    NVME_PROFILE,
    SimulatedDisk,
    SSD_PROFILE,
)

PROFILES = [HDD_PROFILE, SSD_PROFILE, NVME_PROFILE]


def run_sweep(tmp_root):
    edges = load_dataset("uk2007", symmetrize=True)
    report = ExperimentReport(
        "ablation-disk",
        "Storage media sweep: CC on uk2007",
        ["profile", "time (s)", "I/O (MiB)", "on-demand iterations", "iterations"],
    )
    stats = {}
    values = {}
    for profile in PROFILES:
        machine = MachineProfile(disk=profile)
        device = Device(tmp_root / profile.name, SimulatedDisk(profile))
        store = preprocess_graphsd(edges, device, P=8, machine=machine).store
        engine = GraphSDEngine(store, machine=machine)
        result = engine.run(ConnectedComponents())
        on_demand = sum(1 for m in result.model_history if m == "sciu")
        stats[profile.name] = (result.sim_seconds, on_demand, result.iterations)
        values[profile.name] = result.values
        report.add_row(
            profile.name,
            result.sim_seconds,
            result.io_traffic / (1 << 20),
            on_demand,
            result.iterations,
        )
    return report, stats, values


def test_disk_profile_sweep(benchmark, tmp_path):
    report, stats, values = benchmark.pedantic(
        lambda: run_sweep(tmp_path), rounds=1, iterations=1
    )
    print_report(report)

    # Identical results on every medium.
    assert np.array_equal(values["hdd"], values["ssd"])
    assert np.array_equal(values["hdd"], values["nvme"])

    # Faster media => faster runs.
    assert stats["nvme"][0] < stats["ssd"][0] < stats["hdd"][0]

    # Narrower seq/ran gap => the scheduler picks on-demand at least as
    # often (as a fraction of iterations).
    frac = {name: s[1] / s[2] for name, s in stats.items()}
    assert frac["hdd"] <= frac["ssd"] + 1e-9
    assert frac["ssd"] <= frac["nvme"] + 1e-9

    benchmark.extra_info["on_demand_fraction"] = {k: round(v, 3) for k, v in frac.items()}
