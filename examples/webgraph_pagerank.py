#!/usr/bin/env python
"""Web-graph ranking: PageRank vs PageRank-Delta, and what FCIU saves.

The paper's intro motivates cross-iteration computation with exactly
this workload: ranking pages on a web crawl, where every full PageRank
iteration re-reads the whole multi-GB edge set. This example runs both
PR and PR-D on the UK2007 web-crawl proxy and shows

* how FCIU's cross-iteration propagation cuts the bytes re-read in the
  second iteration of each round (only the secondary sub-blocks return
  to disk),
* how PR-Delta's shrinking frontier lets the scheduler move from full
  sweeps to selective loads as ranks converge,
* that both formulations agree on the ranking.

Run:  python examples/webgraph_pagerank.py
"""

import tempfile

import numpy as np

from repro.bench import Harness
from repro.core import GraphSDConfig, GraphSDEngine
from repro.datasets import load_dataset


def main() -> None:
    edges = load_dataset("uk2007")
    print(f"uk2007 proxy: |V|={edges.num_vertices:,} |E|={edges.num_edges:,}")

    with Harness(P=8) as harness:
        pr = harness.run("graphsd", "pr", "uk2007")
        pr_nocross = harness.run("graphsd-b1", "pr", "uk2007")
        prd = harness.run("graphsd", "pr-d", "uk2007")

    print("\nPageRank, 5 iterations:")
    print(f"  with FCIU cross-iteration: {pr.sim_seconds:6.2f}s "
          f"({pr.io_traffic / (1 << 20):7.1f} MiB)")
    print(f"  without (ablation b1):     {pr_nocross.sim_seconds:6.2f}s "
          f"({pr_nocross.io_traffic / (1 << 20):7.1f} MiB)")
    print(f"  cross-iteration update saves "
          f"{100 * (1 - pr.io_traffic / pr_nocross.io_traffic):.0f}% of the I/O traffic")
    per_iter = [f"{r.io_bytes / (1 << 20):.0f}" for r in pr.per_iteration]
    print(f"  MiB read per iteration: {per_iter} "
          "(every 2nd iteration re-reads only secondary sub-blocks)")

    print("\nPageRank-Delta, up to 20 iterations:")
    print(f"  {prd.summary()}")
    print(f"  frontier sizes: {prd.frontier_history}")
    print(f"  I/O models:     {prd.model_history}")

    # The two formulations converge to the same ranking.
    top_pr = np.argsort(pr.values)[::-1][:10]
    top_prd = np.argsort(prd.values)[::-1][:10]
    overlap = len(set(top_pr.tolist()) & set(top_prd.tolist()))
    print(f"\ntop-10 overlap between PR and PR-Delta rankings: {overlap}/10")


if __name__ == "__main__":
    main()
