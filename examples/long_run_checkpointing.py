#!/usr/bin/env python
"""Surviving a crash mid-run: checkpoint/resume on a long execution.

Out-of-core runs are long (the paper's Kron30 SSSP takes six hours);
losing one to a crash should not mean starting over. The engine already
writes vertex state to disk every iteration, so checkpointing only adds
the control state: frontier, iteration counter, and pending
cross-iteration contributions.

This example runs SSSP with checkpointing enabled, kills the engine
mid-run (simulated crash), resumes from the checkpoint, and shows the
resumed run (a) produces exactly the values an uninterrupted run does
and (b) only pays for the iterations after the crash.

Run:  python examples/long_run_checkpointing.py
"""

import tempfile

import numpy as np

from repro import Device, GridStore, make_intervals
from repro.algorithms import GraphContext, SSSP
from repro.core import GraphSDEngine
from repro.datasets import load_dataset


class CrashAfterRounds(GraphSDEngine):
    """Test harness trick: raise after N rounds, like a power cut."""

    def __init__(self, *args, rounds, **kwargs):
        super().__init__(*args, **kwargs)
        self._budget = rounds

    def _run_round(self):
        if self._budget == 0:
            raise RuntimeError("simulated power failure")
        self._budget -= 1
        return super()._run_round()


def main() -> None:
    edges = load_dataset("uk2007", weighted=True)
    device = Device(tempfile.mkdtemp(prefix="graphsd-ckpt-"))
    store = GridStore.build(edges, make_intervals(edges, P=8), device, prefix="uk")
    print(f"graph: |V|={edges.num_vertices:,} |E|={edges.num_edges:,}")

    # The reference: one uninterrupted run.
    ctx = GraphContext.from_edges(edges)
    straight = GraphSDEngine(store, ctx=ctx).run(SSSP(source=0))
    print(f"uninterrupted: {straight.summary()}")

    # A run that dies three rounds in...
    crasher = CrashAfterRounds(store, rounds=3, ctx=ctx)
    try:
        crasher.run(SSSP(source=0), checkpoint_tag="demo")
    except RuntimeError as exc:
        done = crasher._iterations_done
        print(f"crash: {exc!r} after {done} iterations (checkpoint on disk)")

    # ...and its resurrection.
    resumed = GraphSDEngine(store, ctx=ctx).run(
        SSSP(source=0), checkpoint_tag="demo", resume=True
    )
    print(f"resumed: {resumed.summary()}")
    print(
        f"post-crash work only: {len(resumed.per_iteration)} of "
        f"{resumed.iterations} total iterations re-executed"
    )

    assert np.allclose(straight.values, resumed.values, equal_nan=True)
    assert resumed.iterations == straight.iterations
    print("resumed distances identical to the uninterrupted run ✓")


if __name__ == "__main__":
    main()
