#!/usr/bin/env python
"""Quickstart: preprocess a graph and run PageRank out-of-core.

Covers the core workflow in ~40 lines:

1. get an edge list (here: a generated social-network proxy),
2. partition it into the 2-D grid representation on a simulated disk,
3. run a vertex program with the GraphSD engine,
4. inspect results and the engine's I/O behaviour.

Run:  python examples/quickstart.py
"""

import tempfile

import numpy as np

from repro import Device, GridStore, make_intervals
from repro.algorithms import GraphContext, PageRank
from repro.core import GraphSDEngine
from repro.datasets import rmat_edges


def main() -> None:
    # 1. An input graph: ~32k vertices, ~500k edges, power-law degrees.
    edges = rmat_edges(scale=15, edge_factor=16, seed=7)
    print(f"graph: |V|={edges.num_vertices:,} |E|={edges.num_edges:,}")

    # 2. Preprocess: 8 vertex intervals -> 8x8 sub-block grid, written to
    #    real files on a device whose disk timing is simulated (HDD model).
    workdir = tempfile.mkdtemp(prefix="graphsd-quickstart-")
    device = Device(workdir)
    intervals = make_intervals(edges, P=8)
    store = GridStore.build(edges, intervals, device, prefix="quickstart")
    print(f"on-disk representation: {device.total_bytes() / (1 << 20):.1f} MiB in {workdir}")

    # 3. Execute five PageRank iterations (the paper's PR workload).
    engine = GraphSDEngine(store, ctx=GraphContext.from_edges(edges))
    result = engine.run(PageRank(iterations=5))

    # 4. Results + engine behaviour.
    print(result.summary())
    top = np.argsort(result.values)[::-1][:5]
    print("top-5 vertices by rank:")
    for v in top:
        print(f"  vertex {v:6d}  rank {result.values[v]:.2f}")
    print(f"I/O models used per iteration: {result.model_history}")
    print(
        f"simulated disk time {result.io_seconds:.3f}s vs modeled compute "
        f"{result.compute_seconds:.3f}s — out-of-core runs are I/O-bound."
    )


if __name__ == "__main__":
    main()
