#!/usr/bin/env python
"""Writing your own vertex program: weighted reachability ("influence").

The engine runs any program built from three vectorized hooks —
``gather`` (per-edge contribution), a ``combine`` reduction (ADD or
MIN), and ``apply`` (per-vertex fold + activation). This example
implements *decaying influence*: seed vertices start with influence 1.0,
every hop multiplies it by a decay factor, and each vertex keeps the
strongest influence path reaching it (a max-product propagation,
expressed as MIN over negative logs would also work — here we keep it
direct by negating). Useful shape: viral-marketing reach, trust
propagation, percolation.

Run:  python examples/custom_algorithm.py
"""

import tempfile

import numpy as np

from repro import Device, GridStore, make_intervals
from repro.algorithms import Combine, GraphContext, VertexProgram
from repro.core import GraphSDEngine
from repro.datasets import rmat_edges
from repro.utils.bitset import VertexSubset


class DecayingInfluence(VertexProgram):
    """Strongest decayed influence from a seed set.

    State is ``-influence`` so the MIN combiner implements max:
    ``influence(v) = max over in-edges (u, v) of influence(u) * decay``.
    Monotone, frontier-driven — exactly the program class SCIU's
    cross-iteration pushes accelerate.
    """

    name = "influence"
    combine = Combine.MIN
    needs_weights = False
    all_active = False

    def __init__(self, seeds, decay=0.5, floor=1e-3):
        self.seeds = list(seeds)
        self.decay = float(decay)
        self.floor = float(floor)  # stop propagating below this influence

    def init_state(self, ctx: GraphContext):
        value = np.zeros(ctx.num_vertices, dtype=np.float64)  # -influence
        value[self.seeds] = -1.0
        return {"value": value}

    def initial_frontier(self, ctx: GraphContext) -> VertexSubset:
        return VertexSubset.from_indices(ctx.num_vertices, self.seeds)

    def gather(self, state, src_ids, weights):
        return state["value"][src_ids] * self.decay

    def apply(self, state, lo, hi, acc, touched):
        current = state["value"][lo:hi]
        candidate = np.where(touched, acc, 0.0)
        new = np.minimum(current, candidate)  # min of negatives = max influence
        activated = (new < current) & (new < -self.floor)
        state["value"][lo:hi] = new
        return activated

    def influence(self, result_values: np.ndarray) -> np.ndarray:
        return -result_values


def main() -> None:
    edges = rmat_edges(scale=14, edge_factor=12, seed=3)
    device = Device(tempfile.mkdtemp(prefix="graphsd-influence-"))
    store = GridStore.build(edges, make_intervals(edges, P=6), device, prefix="inf")

    seeds = [0, 1, 2]
    program = DecayingInfluence(seeds, decay=0.5)
    result = GraphSDEngine(store, ctx=GraphContext.from_edges(edges)).run(program)

    influence = program.influence(result.values)
    reached = int(np.count_nonzero(influence > 0))
    print(result.summary())
    print(
        f"seeds {seeds} reach {reached:,} of {edges.num_vertices:,} vertices "
        f"with influence > 0 (decay 0.5/hop, floor {program.floor})"
    )
    hist, bin_edges = np.histogram(
        influence[influence > 0], bins=[1e-3, 1e-2, 0.1, 0.25, 0.5, 1.0001]
    )
    for count, lo, hi in zip(hist[::-1], bin_edges[-2::-1], bin_edges[:0:-1]):
        print(f"  influence in [{lo:.3g}, {hi:.3g}): {count:,} vertices")
    print(f"I/O models: {result.model_history} — a frontier workload, mostly on-demand")


if __name__ == "__main__":
    main()
