#!/usr/bin/env python
"""Community-scale connected components: GraphSD vs the baselines.

Runs label-propagation CC on the Twitter2010 social-network proxy under
every engine in the repository — GraphSD, HUS-Graph, Lumos, GridGraph,
GraphChi and X-Stream — verifying they all find identical components and
comparing their modeled execution time and I/O traffic. A compact
rendition of the paper's Fig. 5 / Fig. 7 story on one dataset.

Run:  python examples/social_components.py
"""

import numpy as np

from repro.bench import Harness
from repro.bench.reporting import format_table


def main() -> None:
    systems = ["graphsd", "husgraph", "lumos", "gridgraph", "graphchi", "xstream"]
    results = {}
    with Harness(P=8, verify=True) as harness:  # verify: oracle-checked
        for system in systems:
            results[system] = harness.run(system, "cc", "twitter2010")

    base = results["graphsd"]
    labels = base.values.astype(np.int64)
    num_components = len(np.unique(labels))
    sizes = np.bincount(np.unique(labels, return_inverse=True)[1])
    print(
        f"twitter2010 proxy: {num_components} weakly-connected components; "
        f"largest covers {100 * sizes.max() / labels.shape[0]:.1f}% of vertices"
    )
    for system in systems[1:]:
        assert np.array_equal(results[system].values, base.values), system
    print("all six engines report identical components (BSP-oracle verified)\n")

    rows = []
    for system in systems:
        r = results[system]
        rows.append(
            [
                system,
                r.iterations,
                f"{r.sim_seconds:.3f}",
                f"{r.sim_seconds / base.sim_seconds:.2f}x",
                f"{r.io_traffic / (1 << 20):.1f}",
                f"{100 * r.breakdown.io / r.sim_seconds:.0f}%",
            ]
        )
    print(
        format_table(
            ["system", "iters", "sim time (s)", "vs graphsd", "I/O MiB", "I/O share"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
