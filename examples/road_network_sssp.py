#!/usr/bin/env python
"""SSSP on a road-network-like lattice: watch the scheduler switch models.

Road networks are the classic high-diameter workload (the paper's intro
motivates SSSP for "navigation and traffic planning"): the frontier is a
thin wave that never covers more than a sliver of the graph, so the
state-aware scheduler should pick the **on-demand** I/O model for nearly
every iteration — the opposite of PageRank. This example builds a
weighted 2-D lattice, runs SSSP, prints the per-iteration model choices,
and validates distances against scipy's Dijkstra.

Run:  python examples/road_network_sssp.py
"""

import tempfile

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro import Device, GridStore, make_intervals
from repro.algorithms import GraphContext, SSSP
from repro.core import GraphSDEngine
from repro.datasets import grid_2d, with_uniform_weights

ROWS, COLS = 120, 120


def main() -> None:
    # A 120x120 city grid; edge weights = travel times.
    edges = with_uniform_weights(grid_2d(ROWS, COLS), low=0.2, high=1.0, seed=42)
    n = edges.num_vertices
    print(f"road network: {ROWS}x{COLS} lattice, |V|={n:,} |E|={edges.num_edges:,}")

    device = Device(tempfile.mkdtemp(prefix="graphsd-roads-"))
    store = GridStore.build(edges, make_intervals(edges, P=8), device, prefix="roads")

    engine = GraphSDEngine(store, ctx=GraphContext.from_edges(edges))
    result = engine.run(SSSP(source=0))
    print(result.summary())

    models = result.model_history
    on_demand = sum(1 for m in models if m == "sciu")
    print(
        f"scheduler chose on-demand I/O in {on_demand}/{len(models)} iterations "
        "(thin frontier => selective loads win)"
    )
    frontier_peak = max(result.frontier_history)
    print(f"peak frontier: {frontier_peak:,} of {n:,} vertices "
          f"({100 * frontier_peak / n:.1f}%)")

    # Validate against scipy's Dijkstra on the same matrix.
    adjacency = csr_matrix(
        (edges.weights, (edges.src, edges.dst)), shape=(n, n)
    )
    expected = dijkstra(adjacency, indices=0)
    assert np.allclose(result.values, expected), "distance mismatch vs scipy"
    corner = ROWS * COLS - 1
    print(f"distance to far corner (vertex {corner}): {result.values[corner]:.2f} "
          "(matches scipy.sparse.csgraph.dijkstra)")


if __name__ == "__main__":
    main()
